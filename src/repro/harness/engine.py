"""Batch experiment engine: dedupe, cache, and fan out simulated jobs.

``ExperimentEngine.run_batch`` accepts any number of :class:`RunSpec`
values — typically every cell of one or several figures at once — and:

1. **dedupes** identical specs (value equality), so e.g. the native
   miniVASP baseline shared by Figure 7, Figure 8, and Table 1 runs
   once per batch instead of once per figure;
2. **expands** dependent phases (probe runs for fraction-scheduled
   checkpoints, checkpoint runs for restarts) into explicit jobs and
   schedules them in dependency waves, so a Figure 9 cell's probe,
   checkpoint run, and restart each simulate exactly once;
3. **consults the disk cache** before simulating, so a warm rerun of
   ``repro-mpi all`` executes zero simulations;
4. **orders every wave longest-pole-first** using a per-spec cost
   model — the wall time recorded in the cache when the spec last ran,
   falling back to a ``nprocs × niters`` heuristic — so the slowest job
   starts first and the pool never idles behind a stragglers' tail;
5. **fans out** the remaining unique jobs over a spawn-safe
   ``ProcessPoolExecutor`` (``jobs=N``), with a per-job ``max_events``
   guard and optional progress lines on stderr.

Results are keyed by spec and identical whether the batch ran serially
or in parallel — workers only ever execute independent simulations, and
folding happens in the parent process.

Declarative scenario grids submit through :meth:`ExperimentEngine.run_sweep`
(see :mod:`repro.harness.sweep`): the sweep's masked cells never reach
the engine, and its cartesian product arrives as one batch so shared
cells and probe/restart parents dedupe like any figure's.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Iterable, Mapping, Sequence

from .cache import ResultCache
from .runner import RunResult
from .spec import RunSpec, execute

__all__ = [
    "EngineStats",
    "ExperimentEngine",
    "DEFAULT_MAX_EVENTS",
    "HEURISTIC_SECONDS_PER_UNIT",
]

#: Runaway-simulation guard applied to jobs that don't set their own
#: ``max_events``.  Two orders of magnitude above the largest legitimate
#: scaled-down run; a job that trips it is wedged, not slow.
DEFAULT_MAX_EVENTS = 100_000_000

#: Rough wall seconds per ``RunSpec.cost_hint`` unit (one rank-iteration),
#: calibrated on the scaled-down figure cells.  Only used to let
#: heuristic estimates sort alongside recorded wall times; ordering, not
#: accuracy, is what matters.
HEURISTIC_SECONDS_PER_UNIT = 2e-3


@dataclass
class EngineStats:
    """What one ``run_batch`` call actually did."""

    submitted: int = 0
    unique: int = 0
    #: Dependency-phase jobs (probes, restart parents) added beyond the
    #: submitted specs.
    chained: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: Executed jobs whose scheduling cost came from a recorded wall time.
    predicted_recorded: int = 0
    #: Executed jobs scheduled by the ``nprocs × niters`` fallback.
    predicted_heuristic: int = 0
    wall_time: float = 0.0

    @property
    def deduped(self) -> int:
        return self.submitted - self.unique

    @property
    def prediction_hit_rate(self) -> float:
        """Fraction of scheduled jobs with a history-based cost estimate."""
        total = self.predicted_recorded + self.predicted_heuristic
        if total == 0:
            return 0.0
        return self.predicted_recorded / total

    def summary(self) -> str:
        """One-line human-readable account (printed by the CLI)."""
        line = (
            f"engine: {self.submitted} jobs submitted, {self.deduped} deduped, "
            f"{self.chained} chained, {self.cache_hits} cache hits, "
            f"{self.executed} simulated, {self.wall_time:.1f}s wall"
        )
        scheduled = self.predicted_recorded + self.predicted_heuristic
        if scheduled:
            line += f", {self.prediction_hit_rate:.0%} costs from history"
        return line


def _execute_job(
    spec: RunSpec,
    deps: dict[RunSpec, RunResult],
    guard: int | None,
) -> tuple[RunResult, float]:
    """Top-level worker entry point (must be picklable by name for spawn).

    Returns ``(result, elapsed_seconds)`` — the wall time is measured in
    the worker so pool queueing delays never pollute the cost model.
    """
    t0 = time.perf_counter()
    result = execute(spec, deps, max_events_guard=guard)
    return result, time.perf_counter() - t0


class ExperimentEngine:
    """Executes batches of run specs with dedupe, caching, and parallelism.

    Args:
        jobs: worker processes; ``1`` (the default) runs in-process.
        cache: optional :class:`ResultCache`; hits skip simulation.
        max_events: per-job event guard for specs without their own.
        progress: emit one line per executed job on stderr.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: ResultCache | None = None,
        max_events: int | None = DEFAULT_MAX_EVENTS,
        progress: bool = False,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.max_events = max_events
        self.progress = progress
        self.last_stats: EngineStats | None = None

    # ----------------------------------------------------------------- #

    def run(self, spec: RunSpec) -> RunResult:
        """Run a single spec (one-element batch)."""
        return self.run_batch([spec])[spec]

    def run_sweep(self, sweep) -> dict[RunSpec, RunResult]:
        """Execute a :class:`~repro.harness.sweep.Sweep` as ONE batch.

        The sweep's masked (NA) cells never reach the engine; the
        executable product is submitted in one deduplicated batch so
        cells sharing a spec — or a probe/restart parent — simulate
        once.  Returns the result map :meth:`Sweep.fold` consumes.
        """
        return self.run_batch(sweep.specs())

    def run_batch(
        self, specs: Sequence[RunSpec]
    ) -> dict[RunSpec, RunResult]:
        """Run many specs; returns results keyed by the submitted specs."""
        t0 = time.perf_counter()
        stats = EngineStats(submitted=len(specs))

        unique: dict[RunSpec, None] = {}
        for spec in specs:
            unique.setdefault(spec, None)
        stats.unique = len(unique)

        # Dependency closure, then waves by chain depth: a spec only
        # runs once every ancestor's result is available to pass along.
        closure: dict[RunSpec, None] = {}
        for spec in unique:
            for ancestor in spec.ancestors():
                closure.setdefault(ancestor, None)
            closure.setdefault(spec, None)
        stats.chained = len(closure) - stats.unique

        waves: dict[int, list[RunSpec]] = {}
        for spec in closure:
            waves.setdefault(spec.chain_depth(), []).append(spec)

        resolved: dict[RunSpec, RunResult] = {}
        total = len(closure)
        done = 0
        for depth in sorted(waves):
            pending: list[RunSpec] = []
            for spec in waves[depth]:
                if self.cache is not None:
                    hit = self.cache.get(spec)
                    if hit is not None:
                        resolved[spec] = hit
                        stats.cache_hits += 1
                        done += 1
                        self._report(done, total, spec, "cached")
                        continue
                pending.append(spec)
            # Longest pole first: with workers this stops the batch tail
            # from hiding behind a late-started slow job; serially it
            # just front-loads the expensive cells.  Stable sort keeps
            # equal-cost specs in submission order (determinism).
            pending.sort(key=lambda spec: self._predicted_cost(spec, stats),
                         reverse=True)
            for spec, result, elapsed in self._execute_wave(pending, resolved):
                resolved[spec] = result
                stats.executed += 1
                done += 1
                self._report(done, total, spec, "ran")
                if self.cache is not None:
                    self.cache.put(spec, result, elapsed=elapsed)

        stats.wall_time = time.perf_counter() - t0
        self.last_stats = stats
        return {spec: resolved[spec] for spec in unique}

    # ----------------------------------------------------------------- #

    def _predicted_cost(self, spec: RunSpec, stats: EngineStats) -> float:
        """Estimated execution seconds for wave ordering."""
        if self.cache is not None:
            recorded = self.cache.recorded_time(spec)
            if recorded is not None:
                stats.predicted_recorded += 1
                return recorded
        stats.predicted_heuristic += 1
        return spec.cost_hint() * HEURISTIC_SECONDS_PER_UNIT

    def _deps_for(
        self, spec: RunSpec, resolved: Mapping[RunSpec, RunResult]
    ) -> dict[RunSpec, RunResult]:
        return {
            ancestor: resolved[ancestor]
            for ancestor in spec.ancestors()
            if ancestor in resolved
        }

    def _execute_wave(
        self,
        pending: Sequence[RunSpec],
        resolved: Mapping[RunSpec, RunResult],
    ) -> Iterable[tuple[RunSpec, RunResult, float]]:
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            for spec in pending:
                result, elapsed = _execute_job(
                    spec, self._deps_for(spec, resolved), self.max_events
                )
                yield spec, result, elapsed
            return

        # Spawn (not fork): simulations build deep object graphs and
        # numpy state; forking a warm parent is where the subtle bugs
        # live, and spawn matches the default on macOS/Windows anyway.
        ctx = get_context("spawn")
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            futures = {
                pool.submit(
                    _execute_job,
                    spec,
                    self._deps_for(spec, resolved),
                    self.max_events,
                ): spec
                for spec in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    result, elapsed = future.result()
                    yield futures[future], result, elapsed

    def _report(self, done: int, total: int, spec: RunSpec, how: str) -> None:
        if self.progress:
            print(
                f"[engine {done}/{total}] {how}: {spec.label()}",
                file=sys.stderr,
                flush=True,
            )
