"""Bounded-retry recovery chains: crash → restart → crash → restart …

The crash-fault language (``RunSpec.crash_fracs``) can now kill a rank
at *any* point of a job's lifetime — including mid-restart, while the
survivors rebuild their lower half, replay comm-creation allgathers, or
drain restored p2p.  This module is the planner that turns a crashed
run back into a finished one:

* :class:`RecoveryPolicy` bounds the retry budget (``max_attempts``
  recovery legs) and models the scheduler's capped exponential backoff
  between attempts (virtual bookkeeping — nothing here sleeps).
* :func:`run_recovery` executes the chain.  Each recovery leg restarts
  from the **last committed image** of the most recent attempt that
  committed one; when *no* attempt ever committed, the leg degrades to
  a **restart from scratch** — the original spec re-run without its
  crash.  ``leg_faults`` arms further crashes on individual recovery
  legs, so multi-hop failure storms (crash → restart → crash → …) are
  first-class and deterministic.
* :class:`RecoveryOutcome` records every attempt and content-hashes
  the whole chain (:meth:`RecoveryOutcome.chain_key`), so two recovery
  runs of the same spec under the same policy and fault plan are
  byte-comparable across processes and dispatch backends.

Every leg is a plain :class:`~repro.harness.spec.RunSpec` executed
through an :class:`~repro.harness.engine.ExperimentEngine` (with its
own auto-recovery disabled — the planner owns the loop), so legs
dedupe, cache, and dispatch like any other job.  The engine integrates
the other direction too: ``ExperimentEngine(recovery=...)`` or
``run_batch(..., recover=True)`` auto-recovers any submitted spec whose
result crashed (see :meth:`ExperimentEngine.run_batch`).

Policy resolution follows the same precedence ladder as the execution
and dispatch backends: explicit argument > :func:`set_default_policy` >
``$REPRO_RECOVERY_ATTEMPTS`` / ``$REPRO_RECOVERY_BACKOFF`` > the
defaults.  The environment rung means spawned pool workers inherit the
CLI's ``--max-attempts`` without replumbing (service workers are remote
processes and keep their own environment).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

from ..util.hashing import stable_json_hash
from .runner import RunResult
from .spec import RunSpec, spec_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from .engine import ExperimentEngine

__all__ = [
    "RecoveryError",
    "RecoveryPolicy",
    "RecoveryAttempt",
    "RecoveryOutcome",
    "run_recovery",
    "resolve_policy",
    "set_default_policy",
    "get_default_policy",
]

#: Cap on the modelled exponential backoff (seconds of virtual wait a
#: cluster scheduler would impose before relaunching; never slept).
BACKOFF_CAP = 300.0

_default_policy: "RecoveryPolicy | None" = None


class RecoveryError(RuntimeError):
    """A recovery chain exhausted its retry budget without completing."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """Retry budget for automatic crash recovery.

    ``max_attempts`` is the number of *recovery legs* allowed on top of
    the initial run (so a chain executes at most ``1 + max_attempts``
    jobs).  ``backoff`` seeds a capped exponential delay model —
    ``backoff * 2**(attempt-1)``, capped at :data:`BACKOFF_CAP` — that
    is recorded per attempt and summed into
    :attr:`RecoveryOutcome.total_delay`; it is scheduler bookkeeping,
    not a real sleep, so recovery stays deterministic and fast.
    """

    max_attempts: int = 3
    backoff: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")

    def delay_before(self, attempt: int) -> float:
        """Modelled wait before recovery leg ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        return min(self.backoff * 2.0 ** (attempt - 1), BACKOFF_CAP)

    def to_dict(self) -> dict:
        return {"max_attempts": self.max_attempts, "backoff": self.backoff}


def set_default_policy(policy: "RecoveryPolicy | None") -> None:
    """Set the process-wide default recovery policy (``None`` clears)."""
    global _default_policy
    _default_policy = policy


def get_default_policy() -> "RecoveryPolicy | None":
    return _default_policy


def resolve_policy(policy: "RecoveryPolicy | None" = None) -> RecoveryPolicy:
    """Explicit > :func:`set_default_policy` > environment > defaults."""
    if policy is not None:
        return policy
    if _default_policy is not None:
        return _default_policy
    attempts = os.environ.get("REPRO_RECOVERY_ATTEMPTS")
    backoff = os.environ.get("REPRO_RECOVERY_BACKOFF")
    if attempts or backoff:
        return RecoveryPolicy(
            max_attempts=int(attempts) if attempts else 3,
            backoff=float(backoff) if backoff else 0.0,
        )
    return RecoveryPolicy()


@dataclass
class RecoveryAttempt:
    """One leg of a recovery chain (index 0 is the initial run)."""

    spec: RunSpec
    result: RunResult
    #: ``"initial"`` for leg 0, ``"image"`` for a restart from the last
    #: committed checkpoint, ``"scratch"`` for the degraded re-run when
    #: no attempt had ever committed an image.
    restarted_from: str = "initial"
    #: Modelled backoff charged before this leg (0.0 for the initial).
    delay: float = 0.0

    @property
    def crashed(self) -> bool:
        return bool(self.result.crashed_ranks)

    @property
    def committed(self) -> int:
        """Committed checkpoints this leg's run produced."""
        return sum(1 for r in self.result.checkpoints if r.committed)


@dataclass
class RecoveryOutcome:
    """The full record of one recovery chain."""

    attempts: list[RecoveryAttempt] = field(default_factory=list)
    policy: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    #: True when the final leg ran to completion (no crashed ranks —
    #: NA cells count as complete: retrying cannot un-NA a protocol).
    completed: bool = False

    @property
    def final_result(self) -> RunResult:
        if not self.attempts:
            raise RecoveryError("empty recovery chain")
        return self.attempts[-1].result

    @property
    def final_spec(self) -> RunSpec:
        if not self.attempts:
            raise RecoveryError("empty recovery chain")
        return self.attempts[-1].spec

    @property
    def recovery_legs(self) -> int:
        """Recovery attempts actually executed (excludes the initial)."""
        return max(0, len(self.attempts) - 1)

    @property
    def total_delay(self) -> float:
        return sum(a.delay for a in self.attempts)

    def chain_key(self) -> str:
        """Stable content hash of the whole chain.

        A function of the policy, every leg's spec hash, how each leg
        was launched, and whether the chain completed — byte-identical
        across processes and dispatch backends for the same plan.
        """
        return stable_json_hash(
            {
                "policy": self.policy.to_dict(),
                "legs": [spec_hash(a.spec) for a in self.attempts],
                "restarted_from": [a.restarted_from for a in self.attempts],
                "completed": self.completed,
            }
        )

    def describe(self) -> str:
        """One-line human-readable chain summary."""
        hops = " -> ".join(
            f"{a.restarted_from}"
            + (f" (crashed {a.result.crashed_ranks})" if a.crashed else "")
            for a in self.attempts
        )
        state = "completed" if self.completed else "budget exhausted"
        return f"recovery[{state}, {self.recovery_legs} legs]: {hops}"


def _normalize_hop(hop) -> tuple[tuple[int, float], ...]:
    return tuple(sorted((int(r), float(f)) for r, f in hop))


def _plan_next_leg(
    attempts: Sequence[RecoveryAttempt],
    hop: tuple[tuple[int, float], ...],
) -> tuple[RunSpec, str]:
    """The spec for the next recovery leg and how it launches.

    Scans the chain newest-first for a leg that committed a checkpoint;
    the new leg restarts from that run's *last* commit.  With no commit
    anywhere in the chain, the original spec is re-run without its
    crash (checkpoint schedule intact, so this time it can commit) and
    with this hop's faults — if any — armed: ``"image"`` when the
    original is itself a restart leg (relaunching it still adopts its
    parent's committed image, which the crash left intact), ``"scratch"``
    otherwise.
    """
    for prior in reversed(attempts):
        committed = prior.committed
        if committed:
            leg = replace(
                prior.spec,
                checkpoint_at=(),
                checkpoint_fractions=(),
                checkpoint_completion_fracs=(),
                crash_fracs=hop,
                restart_of=prior.spec,
                restart_ckpt=committed - 1,
            )
            leg.validate()
            return leg, "image"
    original = attempts[0].spec
    leg = replace(original, crash_fracs=hop)
    leg.validate()
    return leg, "image" if original.restart_of is not None else "scratch"


def run_recovery(
    spec: RunSpec,
    policy: RecoveryPolicy | None = None,
    *,
    leg_faults: Sequence[Sequence[tuple[int, float]]] = (),
    engine: "ExperimentEngine | None" = None,
    initial: RunResult | None = None,
) -> RecoveryOutcome:
    """Run ``spec`` and chase any crash with bounded restart attempts.

    Args:
        spec: the job to run (may itself be a restart spec, and may
            carry ``crash_fracs`` — that is the point).
        policy: retry budget; ``None`` resolves through
            :func:`resolve_policy`.
        leg_faults: per-recovery-leg crash plans — ``leg_faults[i]`` is
            the ``crash_fracs`` armed on recovery leg ``i+1`` (empty /
            exhausted → the leg runs crash-free).  This is how
            multi-hop storms are expressed deterministically.
        engine: the :class:`ExperimentEngine` that executes each leg
            (auto-recovery suppressed for the legs — this function owns
            the loop).  ``None`` builds a throwaway in-process engine.
        initial: an already-computed result for ``spec`` (the engine's
            auto-recovery path passes the crashed result it just
            collected so leg 0 is not re-run).

    Returns a :class:`RecoveryOutcome`; it never raises on budget
    exhaustion — check ``outcome.completed`` (the ``recovery-chain``
    oracle raises :class:`RecoveryError` for you).
    """
    policy = resolve_policy(policy)
    if engine is None:
        from .engine import ExperimentEngine

        engine = ExperimentEngine(dispatch="inline")
    hops = [_normalize_hop(h) for h in leg_faults]

    if initial is None:
        initial = engine.run_batch([spec], recover=False)[spec]
    outcome = RecoveryOutcome(policy=policy)
    outcome.attempts.append(RecoveryAttempt(spec=spec, result=initial))

    attempt = 0
    while outcome.attempts[-1].crashed and attempt < policy.max_attempts:
        attempt += 1
        hop = hops[attempt - 1] if attempt <= len(hops) else ()
        leg, how = _plan_next_leg(outcome.attempts, hop)
        result = engine.run_batch([leg], recover=False)[leg]
        outcome.attempts.append(
            RecoveryAttempt(
                spec=leg,
                result=result,
                restarted_from=how,
                delay=policy.delay_before(attempt),
            )
        )
    outcome.completed = not outcome.attempts[-1].crashed
    return outcome
