"""Fault-injection + differential-oracle verification subsystem.

The paper's central claim — a topological sort over collective
dependencies yields a *safe cut* under any interleaving of checkpoint
requests and application progress — is the kind of property that only
systematic adversarial validation keeps true as the system grows.  This
module turns the repo's ad-hoc oracles (the online-vs-offline cut test,
the serial-vs-parallel engine comparisons, the cold-vs-warm image-tier
differentials) into one reusable subsystem:

* :class:`FaultSchedule` — a seed-deterministic draw of the adversarial
  knobs: checkpoint-request timing (mid-run fractions *and*
  completion-window fractions that race rank exits), rank-completion
  staggering (the ``earlyexit`` app's shape), and restart depth.  The
  schedule's perturbations reach simulation through declarative
  :class:`RunSpec` fields (``checkpoint_fractions``,
  ``checkpoint_completion_fracs``, app kwargs), so they enter the spec
  content hash and the result cache just like any figure cell.
* :class:`Oracle` — one check: run the scenario a fault schedule
  describes and compare two independent derivations of the same truth
  (online vs offline cut, interrupted vs uninterrupted fingerprint,
  serial vs parallel engine, cold vs warm tier).
* :func:`run_oracles` — sweep oracles over seeds; every failure carries
  a *derandomized reproduction command* (``repro-mpi verify --oracle X
  --seeds 1 --base-seed N``) so a nightly CI hit replays locally in one
  paste.

``repro-mpi verify`` is the CLI face (cache-aware where an oracle
permits, ``--bench-json``, failing-seed artifact on mismatch).
"""

from __future__ import annotations

import tempfile
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from ..des.errors import DeadlockError, SchedulingError
from ..scenarios import SCENARIOS
from ..util.hashing import stable_json_hash
from .cache import ResultCache
from .engine import ExperimentEngine
from .runner import RunResult
from .spec import (
    RunSpec,
    _canonical_value,
    execute,
    run_result_to_dict,
)

__all__ = [
    "FaultSchedule",
    "Oracle",
    "OracleMismatch",
    "OracleReport",
    "ORACLES",
    "program_position_for",
    "result_fingerprint",
    "run_oracles",
    "schedule_from_dict",
    "schedule_to_dict",
]


class OracleMismatch(AssertionError):
    """An oracle's two derivations of the same truth disagreed."""


def result_fingerprint(result: RunResult) -> str:
    """Determinism fingerprint of a run's application-visible outcome.

    Per-rank results only: virtual times, event counts, and checkpoint
    phase timings legitimately differ between an uninterrupted run and
    a restart — what must be byte-identical is what the application
    computed.
    """
    return stable_json_hash(_canonical_value(result.per_rank))


def program_position_for(program, rank: int, counts: dict) -> int:
    """Program position matching a rank's per-group executed counts.

    The inverse projection the safe-cut oracle needs: SEQ tables count
    per-group executions, positions index the rank's op sequence.
    """
    remaining = dict(counts)
    pos = 0
    for g in program.ops[rank]:
        if all(v <= 0 for v in remaining.values()):
            break
        if remaining.get(g, 0) > 0:
            remaining[g] -= 1
            pos += 1
        else:
            if any(v > 0 for v in remaining.values()):
                raise OracleMismatch(
                    f"rank {rank}: counts {counts} unreachable in program"
                )
            break
    if any(v != 0 for v in remaining.values()):
        raise OracleMismatch(
            f"rank {rank}: counts {counts} leave remainder {remaining}"
        )
    return pos


# --------------------------------------------------------------------- #
# Fault schedules
# --------------------------------------------------------------------- #

#: Modest storage so checkpoint phases stay fast at verification scale.
def _storage():
    from ..netmodel import StorageModel

    return StorageModel(base_latency=1e-4)


@dataclass(frozen=True)
class FaultSchedule:
    """One seed's adversarial scenario, fully declarative.

    Everything here flows into :class:`RunSpec` fields or app kwargs,
    so equal schedules build equal (content-hashed, cacheable) specs.
    """

    seed: int
    protocol: str = "cc"
    nprocs: int = 4
    niters: int = 12
    shared: int = 4
    leavers: int = 1
    #: Request instants as fractions of the probe's earliest rank
    #: finish — the completion-race window (may exceed 1.0: requests
    #: landing after ranks exited).
    completion_fracs: tuple[float, ...] = (0.99,)
    #: Additional mid-run request instants (fractions of probe runtime).
    mid_fracs: tuple[float, ...] = ()
    #: How many restart legs to chain from the committed images.
    restart_depth: int = 1
    #: Which committed checkpoint the first restart adopts.
    restart_ckpt: int = 0
    #: Crash-fault events: ``(rank, frac)`` hard-kills ``rank`` at that
    #: fraction of the probe runtime.  Only the crash-aware specs
    #: (:meth:`crash_spec`) carry these — the graceful specs the
    #: commit-must-succeed oracles compare stay crash-free.
    crash_fracs: tuple[tuple[int, float], ...] = ()
    #: Multi-hop failure storm: ``recovery_crash_fracs[i]`` is the
    #: ``crash_fracs`` plan armed on recovery leg ``i+1`` of the
    #: bounded-retry chain the ``recovery-chain`` oracle drives (see
    #: :mod:`repro.harness.recovery`).  Recovery legs are restart specs,
    #: so a non-empty hop is exactly a crash *on a restart leg*, with
    #: fractions relative to that leg's own runtime.
    recovery_crash_fracs: tuple[tuple[tuple[int, float], ...], ...] = ()
    #: Canonical scenario string (:mod:`repro.scenarios`) the whole
    #: schedule runs under — fabric, straggler, degraded link — so the
    #: fuzzer explores scenarios against crashes and recovery chains.
    #: ``None`` is the unperturbed cluster.
    scenario: "str | None" = None

    @classmethod
    def draw(
        cls, seed: int, *, protocols: Sequence[str] = ("cc", "2pc")
    ) -> "FaultSchedule":
        """Deterministically derive a schedule from ``seed``.

        The draw covers the scenario axes the coordinator historically
        got wrong: requests just before/at/after the first rank exit,
        requests stacked so some defer behind an in-flight round, both
        protocols, single/chained restarts, and (new axes drawn last, so
        pre-existing seeds keep their schedules) ranks hard-killed
        before, during, or after the commit window.
        """
        rng = np.random.default_rng(np.random.SeedSequence([0x5EED, seed]))
        nprocs = int(rng.integers(3, 6))
        niters = int(rng.integers(10, 15))
        shared = int(rng.integers(3, min(6, niters)))
        leavers = int(rng.integers(1, max(2, nprocs - 1)))
        n_completion = int(rng.integers(1, 3))
        completion_fracs = tuple(
            round(float(f), 6) for f in rng.uniform(0.85, 1.15, n_completion)
        )
        mid_fracs = (
            (round(float(rng.uniform(0.2, 0.7)), 6),)
            if rng.random() < 0.5
            else ()
        )
        n_commits = n_completion + len(mid_fracs)
        protocol = str(rng.choice(list(protocols)))
        restart_depth = int(rng.integers(1, 3))
        restart_ckpt = int(rng.integers(0, n_commits))
        crash_fracs: tuple[tuple[int, float], ...] = ()
        if rng.random() < 0.4:
            crash_fracs = (
                (
                    int(rng.integers(0, nprocs)),
                    round(float(rng.uniform(0.3, 1.1)), 6),
                ),
            )
            # Multi-rank simultaneous failure: with the round already
            # doomed by one corpse, a second corpse in the same round
            # must reclaim *its* debt sets too (drawn after every other
            # axis, so crash-free seeds keep their schedules).
            if rng.random() < 0.3:
                survivors = [
                    r for r in range(nprocs) if r != crash_fracs[0][0]
                ]
                second = (
                    int(survivors[int(rng.integers(0, len(survivors)))]),
                    round(float(rng.uniform(0.3, 1.1)), 6),
                )
                crash_fracs = tuple(sorted(crash_fracs + (second,)))
        # Multi-hop storms: crashes armed on the *recovery legs* of the
        # retry chain chasing the crash above — i.e. crashes on restart
        # legs, landing while survivors rebuild the lower half or drain
        # restored p2p.  Drawn after every other axis (and only when a
        # first crash exists), so every pre-existing seed keeps its
        # schedule bit-exact.
        recovery_crash_fracs: tuple[tuple[tuple[int, float], ...], ...] = ()
        if crash_fracs and rng.random() < 0.5:
            hops = []
            hops.append((
                (
                    int(rng.integers(0, nprocs)),
                    round(float(rng.uniform(0.15, 1.0)), 6),
                ),
            ))
            if rng.random() < 0.35:
                hops.append((
                    (
                        int(rng.integers(0, nprocs)),
                        round(float(rng.uniform(0.15, 1.0)), 6),
                    ),
                ))
            recovery_crash_fracs = tuple(hops)
        # Scenario axis: run the whole schedule — baseline, checkpoint,
        # crash, and every recovery leg — under a perturbed fabric or
        # compute condition.  Drawn after every other axis, so every
        # pre-existing seed keeps its schedule bit-exact.
        scenario: "str | None" = None
        if rng.random() < 0.35:
            scenario = str(rng.choice(sorted(SCENARIOS)))
        return cls(
            seed=seed,
            protocol=protocol,
            nprocs=nprocs,
            niters=niters,
            shared=shared,
            leavers=leavers,
            completion_fracs=completion_fracs,
            mid_fracs=mid_fracs,
            restart_depth=restart_depth,
            restart_ckpt=restart_ckpt,
            crash_fracs=crash_fracs,
            recovery_crash_fracs=recovery_crash_fracs,
            scenario=scenario,
        )

    # -- spec builders ------------------------------------------------- #

    def _app_kwargs(self) -> dict:
        return {
            "niters": self.niters,
            "shared": self.shared,
            "leavers": self.leavers,
            "memory_bytes": 1 << 20,
        }

    def uninterrupted_spec(self) -> RunSpec:
        """The baseline run (identical to the checkpoint spec's probe,
        so the engine dedupes the two)."""
        return RunSpec.create(
            "earlyexit",
            self.nprocs,
            app_kwargs=self._app_kwargs(),
            protocol=self.protocol,
            seed=self.seed,
            storage=_storage(),
            scenario=self.scenario,
        )

    def checkpoint_spec(self) -> RunSpec:
        """The perturbed run: requests racing rank completion (plus any
        mid-run requests)."""
        return RunSpec.create(
            "earlyexit",
            self.nprocs,
            app_kwargs=self._app_kwargs(),
            protocol=self.protocol,
            seed=self.seed,
            checkpoint_fractions=self.mid_fracs,
            checkpoint_completion_fracs=self.completion_fracs,
            storage=_storage(),
            scenario=self.scenario,
        )

    def crash_spec(
        self, crash_fracs: "tuple[tuple[int, float], ...] | None" = None
    ) -> RunSpec:
        """The checkpointed run with the schedule's crash faults armed.

        ``crash_fracs`` overrides the drawn events (the crash oracle
        derives a deterministic fallback when the draw produced none).
        Falls back to :meth:`checkpoint_spec` when there is no crash to
        inject.
        """
        fracs = self.crash_fracs if crash_fracs is None else tuple(crash_fracs)
        if not fracs:
            return self.checkpoint_spec()
        return RunSpec.create(
            "earlyexit",
            self.nprocs,
            app_kwargs=self._app_kwargs(),
            protocol=self.protocol,
            seed=self.seed,
            checkpoint_fractions=self.mid_fracs,
            checkpoint_completion_fracs=self.completion_fracs,
            crash_fracs=fracs,
            storage=_storage(),
            scenario=self.scenario,
        )

    def restart_chain(self, base_runtime: float) -> "list[RunSpec]":
        """``restart_depth`` chained restart specs from the checkpoint
        run's commits.

        Intermediate legs carry their own absolute-time request so the
        next leg has an image set to adopt; the request instant is a
        pure function of the (deterministic) base runtime, so the chain
        specs are cache-stable.
        """
        chain: list[RunSpec] = []
        parent = self.checkpoint_spec()
        ckpt_index = self.restart_ckpt
        for depth in range(self.restart_depth):
            last = depth == self.restart_depth - 1
            chain.append(
                RunSpec.create(
                    "earlyexit",
                    self.nprocs,
                    app_kwargs=self._app_kwargs(),
                    protocol=self.protocol,
                    seed=self.seed,
                    storage=_storage(),
                    restart_of=parent,
                    restart_ckpt=ckpt_index,
                    # Intermediate legs re-checkpoint (possibly past
                    # their own completion: a terminal snapshot is a
                    # legal parent now) so the chain can keep going.
                    checkpoint_at=() if last else (base_runtime * 1.5,),
                    scenario=self.scenario,
                )
            )
            parent = chain[-1]
            ckpt_index = 0
        return chain


def schedule_to_dict(schedule: FaultSchedule) -> dict:
    """JSON-stable form of a schedule (tuples become lists).

    This is both the fuzz corpus format and the dispatch layer's
    check-job wire format: a schedule round-trips the JSON boundary
    bit-exact, so a check runs identically in-process, in a pool
    worker, or on a service worker.
    """
    out = asdict(schedule)
    out["completion_fracs"] = list(schedule.completion_fracs)
    out["mid_fracs"] = list(schedule.mid_fracs)
    out["crash_fracs"] = [[r, f] for r, f in schedule.crash_fracs]
    # Only present when armed: existing corpora hash schedules without
    # this key, and the fuzzer's content-addressed entry keys must not
    # shift under them.
    if schedule.recovery_crash_fracs:
        out["recovery_crash_fracs"] = [
            [[r, f] for r, f in hop] for hop in schedule.recovery_crash_fracs
        ]
    else:
        out.pop("recovery_crash_fracs", None)
    if schedule.scenario:
        out["scenario"] = schedule.scenario
    else:
        out.pop("scenario", None)
    return out


def schedule_from_dict(data: dict) -> FaultSchedule:
    return FaultSchedule(
        seed=int(data["seed"]),
        protocol=str(data["protocol"]),
        nprocs=int(data["nprocs"]),
        niters=int(data["niters"]),
        shared=int(data["shared"]),
        leavers=int(data["leavers"]),
        completion_fracs=tuple(float(f) for f in data["completion_fracs"]),
        mid_fracs=tuple(float(f) for f in data["mid_fracs"]),
        restart_depth=int(data["restart_depth"]),
        restart_ckpt=int(data["restart_ckpt"]),
        crash_fracs=tuple(
            (int(r), float(f)) for r, f in data.get("crash_fracs", ())
        ),
        recovery_crash_fracs=tuple(
            tuple((int(r), float(f)) for r, f in hop)
            for hop in data.get("recovery_crash_fracs", ())
        ),
        scenario=data.get("scenario"),
    )


# --------------------------------------------------------------------- #
# Oracles
# --------------------------------------------------------------------- #

@dataclass
class OracleReport:
    """One oracle × seed outcome."""

    oracle: str
    seed: int
    ok: bool
    detail: str = ""
    #: Derandomized one-paste reproduction command.
    repro: str = ""
    #: Anomaly class for failing reports ("" while ``ok``):
    #: ``"mismatch"`` — the oracle's two derivations disagreed;
    #: ``"deadlock"`` — the simulation wedged (a genuine distributed
    #: deadlock, or a hung schedule dying at its ``max_events`` guard);
    #: ``"recovery"`` — a bounded-retry recovery chain exhausted its
    #: budget without reaching clean completion;
    #: ``"crash"`` — the oracle itself blew up (ProtocolError, SpecError…).
    kind: str = ""

    def as_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "seed": self.seed,
            "ok": self.ok,
            "detail": self.detail,
            "repro": self.repro,
            "kind": self.kind,
        }


def _classify_exception(exc: BaseException) -> str:
    """Anomaly class of a non-mismatch failure.

    A hung schedule surfaces either as a :class:`DeadlockError` (live
    processes blocked with no pending events) or as the ``max_events``
    guard tripping on a runaway poll loop (:class:`SchedulingError`) —
    both mean "this schedule wedged the simulation", which is its own
    anomaly class, distinct from an oracle implementation blowing up.
    A :class:`~repro.harness.recovery.RecoveryError` — the retry budget
    ran dry while the schedule kept crashing the chain — is likewise its
    own class: the interesting question it raises is "why did every
    restart leg die", not "which oracle broke".
    """
    from .recovery import RecoveryError

    if isinstance(exc, RecoveryError) or "RecoveryError" in str(exc):
        return "recovery"
    if isinstance(exc, DeadlockError):
        return "deadlock"
    if isinstance(exc, SchedulingError) and "max_events" in str(exc):
        return "deadlock"
    # ProcessFailed wraps the body's exception; a deadlock/runaway inside
    # a worker process arrives stringified, so match on the message too.
    if "max_events" in str(exc) or "DeadlockError" in str(exc):
        return "deadlock"
    return "crash"


class Oracle(ABC):
    """One differential check, sweepable over fault-schedule seeds."""

    #: Registry key and ``--oracle`` spelling.
    name: str = "abstract"
    #: One-line catalog entry (README / ``--help``).
    description: str = ""
    #: Whether the check can serve (and warm) the shared result cache.
    cache_aware: bool = False

    def check(self, seed: int, engine: "ExperimentEngine | None" = None) -> OracleReport:
        """Run the check for one seed; never raises.

        A mismatch is the oracle's verdict; any *other* exception — a
        ProtocolError, a simulated deadlock, a spec error — is exactly
        the kind of fault the sweep exists to surface, so it becomes a
        failing report too (with the same derandomized repro command)
        instead of crashing the remaining seeds and losing the artifact.
        """
        return self.check_schedule(FaultSchedule.draw(seed), engine)

    def check_schedule(
        self,
        schedule: FaultSchedule,
        engine: "ExperimentEngine | None" = None,
    ) -> OracleReport:
        """:meth:`check` for an explicit (possibly hand-built) schedule.

        The fuzzer's shrinker re-checks *mutated* schedules that no seed
        draws; the report's ``seed`` and repro command refer to the
        schedule's originating seed.
        """
        seed = schedule.seed
        if engine is None or not self.cache_aware:
            engine = ExperimentEngine()
        kind = ""
        try:
            detail = self.verify(schedule, engine)
            ok = True
        except OracleMismatch as exc:
            detail = str(exc)
            ok = False
            kind = "mismatch"
        except Exception as exc:  # noqa: BLE001 - reported, never swallowed
            ok = False
            kind = _classify_exception(exc)
            if kind == "deadlock":
                detail = f"simulation wedged: {type(exc).__name__}: {exc}"
            else:
                detail = f"oracle crashed: {type(exc).__name__}: {exc}"
        return OracleReport(
            oracle=self.name,
            seed=seed,
            ok=ok,
            detail=detail,
            repro=f"repro-mpi verify --oracle {self.name} --seeds 1 --base-seed {seed}",
            kind=kind,
        )

    @abstractmethod
    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        """Perform the check; return a human-readable detail line or
        raise :class:`OracleMismatch`."""

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise OracleMismatch(message)


class RankCompletionOracle(Oracle):
    """Checkpoint-through-rank-completion, end to end.

    A round racing rank completion must COMMIT (no ``abort_reason``),
    the interrupted run must finish with the uninterrupted run's
    per-rank results, and restarting from the committed images — to the
    schedule's chained depth — must reproduce the same determinism
    fingerprint.
    """

    name = "rank-completion"
    description = (
        "requests racing rank exits commit, and restart chains from the "
        "committed images reproduce the uninterrupted fingerprint"
    )
    cache_aware = True

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        base = schedule.uninterrupted_spec()
        ckpt = schedule.checkpoint_spec()
        results = engine.run_batch([base, ckpt])
        base_res, ckpt_res = results[base], results[ckpt]
        self._require(not base_res.na_reason, f"baseline NA: {base_res.na_reason}")
        self._require(not ckpt_res.na_reason, f"ckpt run NA: {ckpt_res.na_reason}")

        n_requests = len(schedule.completion_fracs) + len(schedule.mid_fracs)
        self._require(
            len(ckpt_res.checkpoints) == n_requests,
            f"{n_requests} requests produced {len(ckpt_res.checkpoints)} records",
        )
        aborted = [r for r in ckpt_res.checkpoints if r.aborted or r.abort_reason]
        self._require(
            not aborted,
            "round(s) aborted instead of committing through completion: "
            + "; ".join(r.abort_reason or "<no reason>" for r in aborted),
        )
        self._require(
            all(r.committed for r in ckpt_res.checkpoints),
            "not every record committed",
        )

        want = result_fingerprint(base_res)
        got = result_fingerprint(ckpt_res)
        self._require(
            got == want,
            f"interrupted run fingerprint {got} != uninterrupted {want}",
        )

        chain = schedule.restart_chain(base_res.runtime)
        chain_res = engine.run_batch(chain)
        final = chain_res[chain[-1]]
        self._require(not final.na_reason, f"restart NA: {final.na_reason}")
        got = result_fingerprint(final)
        self._require(
            got == want,
            f"depth-{schedule.restart_depth} restart fingerprint {got} != "
            f"uninterrupted {want}",
        )
        finished_images = sum(
            1
            for rec in ckpt_res.checkpoints
            for im in rec.images.values()
            if getattr(im, "finished", False)
        )
        return (
            f"{n_requests} commit(s), {finished_images} finished-rank "
            f"image(s), depth-{schedule.restart_depth} restart fingerprint ok"
        )


def _safe_cut_detail(
    schedule: FaultSchedule, scenario: "str | None" = None
) -> str:
    """Shared body of the safe-cut check: online CC cut vs the offline
    topological-sort fixpoint, optionally under a scenario.

    Runs the schedule-known ``scheduled`` app, checkpoints it at a
    seed-drawn instant, and verifies the per-group SEQ values frozen in
    the images equal :func:`repro.core.graph.compute_safe_cut` applied
    to the request-time reports (paper Section 4.2.2).  Executes fresh
    (never from cache): the comparison needs the full images' SEQ
    tables, which never cross the JSON boundary.  The scenario changes
    *when* the cut lands (fabric and compute skew shift every request
    instant), never *whether* its structure is safe — exactly what the
    scenario-invariance oracle leans on.
    """
    from ..apps.scheduled import ScheduledMix
    from ..core import compute_safe_cut

    rng = np.random.default_rng(np.random.SeedSequence([0xC0DE, schedule.seed]))
    nprocs = int(rng.choice([4, 6]))
    niters = int(rng.integers(8, 13))
    frac = float(rng.uniform(0.15, 1.05))
    app_kwargs = {
        "niters": niters,
        "nprocs": nprocs,
        "schedule_seed": schedule.seed,
    }
    spec = RunSpec.create(
        "scheduled",
        nprocs,
        app_kwargs=app_kwargs,
        protocol="cc",
        seed=2,
        checkpoint_fractions=(frac,),
        storage=_storage(),
        scenario=scenario,
    )
    result = execute(spec)
    Oracle._require(not result.na_reason, f"run NA: {result.na_reason}")
    committed = [r for r in result.checkpoints if r.committed]
    Oracle._require(bool(committed), "request did not commit")

    program = ScheduledMix(**app_kwargs).offline_program()
    checked = 0
    for rec in committed:
        start = tuple(
            program_position_for(program, r, rec.seq_reports.get(r, {}))
            for r in range(nprocs)
        )
        cut = compute_safe_cut(program, start)
        for g, target in cut.targets.items():
            for r in program.members[g]:
                snap = rec.images[r].seq_table["seq"].get(g, 0)
                Oracle._require(
                    snap == target,
                    f"group {g:#x}: rank {r} snapshot seq {snap} != "
                    f"oracle target {target}",
                )
                checked += 1
    return f"{len(committed)} cut(s), {checked} (group, rank) targets match"


def _require_conserved(label: str, res: RunResult) -> None:
    """Per-rank drain conservation (restored + buffered == consumed +
    leftover) — shared by every oracle that sweeps run legs."""
    for rank in range(res.nprocs):
        restored = res.drain_restored[rank]
        buffered = res.drain_buffered[rank]
        consumed = res.drain_consumed[rank]
        leftover = res.drain_leftover[rank]
        Oracle._require(
            restored + buffered == consumed + leftover,
            f"{label}: rank {rank} drain imbalance — restored {restored} "
            f"+ buffered {buffered} != consumed {consumed} + leftover "
            f"{leftover}",
        )


class SafeCutOracle(Oracle):
    """Online CC cut vs the offline topological-sort fixpoint.

    See :func:`_safe_cut_detail` — the check honors the schedule's drawn
    scenario, so the fuzzer stresses cut structure under perturbed
    fabrics and compute skew too.
    """

    name = "safe-cut"
    description = (
        "committed SEQ tables equal the offline topological-sort fixpoint "
        "of the request-time reports"
    )
    cache_aware = False

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        return _safe_cut_detail(schedule, scenario=schedule.scenario)


class EngineEquivalenceOracle(Oracle):
    """Serial vs parallel engine execution of one deduplicated batch.

    The same specs — probe, checkpointed run, restart — through
    ``jobs=1`` and ``jobs=2`` engines (both cache-less, so both actually
    simulate) must serialize to byte-identical results.
    """

    name = "engine"
    description = (
        "a probe/checkpoint/restart batch is byte-identical between "
        "serial and parallel engine execution"
    )
    cache_aware = False

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        base = schedule.uninterrupted_spec()
        ckpt = schedule.checkpoint_spec()
        restart = RunSpec.create(
            "earlyexit",
            schedule.nprocs,
            app_kwargs=schedule._app_kwargs(),
            protocol=schedule.protocol,
            seed=schedule.seed,
            storage=_storage(),
            restart_of=ckpt,
        )
        specs = [base, ckpt, restart]
        if schedule.crash_fracs:
            # A crash run must be just as deterministic as a graceful
            # one: crashed_ranks, abort records, and drain counters all
            # travel through the serialized result.
            specs.append(schedule.crash_spec())
        serial = ExperimentEngine(jobs=1).run_batch(specs)
        parallel = ExperimentEngine(jobs=2).run_batch(specs)
        for spec in specs:
            a = stable_json_hash(run_result_to_dict(serial[spec]))
            b = stable_json_hash(run_result_to_dict(parallel[spec]))
            self._require(
                a == b,
                f"{spec.label()}: serial result {a} != parallel {b}",
            )
        return f"{len(specs)} specs byte-identical across jobs=1 and jobs=2"


class ImageTierOracle(Oracle):
    """Cold vs warm restart: the image tier must be invisible in results.

    A restart whose parent is re-simulated inline (cold) and the same
    restart fed the parent's committed images from a freshly-populated
    cache tier (warm) must serialize identically — and the warm run
    must actually have used the tier.
    """

    name = "image-tier"
    description = (
        "a tier-fed warm restart is byte-identical to a cold recompute "
        "and simulates zero parents"
    )
    cache_aware = False

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        parent = schedule.checkpoint_spec()
        restart = RunSpec.create(
            "earlyexit",
            schedule.nprocs,
            app_kwargs=schedule._app_kwargs(),
            protocol=schedule.protocol,
            seed=schedule.seed,
            storage=_storage(),
            restart_of=parent,
            restart_ckpt=schedule.restart_ckpt,
        )
        cold = execute(restart)
        self._require(not cold.na_reason, f"cold restart NA: {cold.na_reason}")
        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            ExperimentEngine(cache=ResultCache(tmp)).run(parent)
            warm_engine = ExperimentEngine(cache=ResultCache(tmp))
            warm = warm_engine.run(restart)
            stats = warm_engine.last_stats
            self._require(
                stats is not None and stats.images_reused == 1,
                "warm restart did not load its parent from the image tier",
            )
            self._require(
                stats.executed == 1,
                f"warm restart simulated {stats.executed} jobs (expected 1: "
                "the restart alone)",
            )
        a = stable_json_hash(run_result_to_dict(cold))
        b = stable_json_hash(run_result_to_dict(warm))
        self._require(a == b, f"cold restart {a} != warm tier-fed restart {b}")
        return "cold == warm, parent served from tier"


class DrainConservationOracle(Oracle):
    """Message conservation through the drain buffer (Section 4.3.3).

    Three independent derivations of "no message is lost or forged
    across a cut": (a) every run — graceful, restarted, or crashed —
    satisfies restored + buffered == consumed + leftover per rank at
    job end; (b) a restart's restored count equals exactly the message
    count frozen in the image it adopted, and everything restored is
    consumed or still buffered (nothing re-drained); (c) a round
    aborted by a crash keeps no partial images — the corpse's debts are
    reclaimed with the round, not leaked into the record.
    """

    name = "drain-conservation"
    description = (
        "messages drained into a checkpoint equal the messages restored "
        "and consumed after resume, and crash-aborted rounds reclaim "
        "(not leak) the corpse's drain debts"
    )
    cache_aware = False

    def _conserved(self, label: str, res: RunResult) -> None:
        _require_conserved(label, res)

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        parent = schedule.checkpoint_spec()
        deps: dict = {}
        parent_res = execute(parent, deps)
        self._require(not parent_res.na_reason, f"ckpt run NA: {parent_res.na_reason}")
        self._conserved("ckpt run", parent_res)

        committed = [r for r in parent_res.checkpoints if r.committed]
        self._require(bool(committed), "checkpoint run committed nothing")
        idx = min(schedule.restart_ckpt, len(committed) - 1)
        restart = RunSpec.create(
            "earlyexit",
            schedule.nprocs,
            app_kwargs=schedule._app_kwargs(),
            protocol=schedule.protocol,
            seed=schedule.seed,
            storage=_storage(),
            restart_of=parent,
            restart_ckpt=idx,
        )
        deps[parent] = parent_res
        restart_res = execute(restart, deps)
        self._require(not restart_res.na_reason, f"restart NA: {restart_res.na_reason}")
        self._conserved("restart", restart_res)
        images = committed[idx].images
        total = 0
        for rank in range(schedule.nprocs):
            frozen = len(images[rank].drained)
            restored = restart_res.drain_restored[rank]
            self._require(
                restored == frozen,
                f"rank {rank}: image froze {frozen} drained message(s) but "
                f"the restart restored {restored}",
            )
            self._require(
                restart_res.drain_buffered[rank] == 0,
                f"rank {rank}: restart re-drained "
                f"{restart_res.drain_buffered[rank]} message(s) on a leg "
                "with no checkpoint request",
            )
            total += frozen

        crash_note = ""
        if schedule.crash_fracs:
            crash_res = execute(schedule.crash_spec(), deps)
            self._require(
                not crash_res.na_reason, f"crash run NA: {crash_res.na_reason}"
            )
            self._conserved("crash run", crash_res)
            for rec in crash_res.checkpoints:
                if rec.aborted:
                    self._require(
                        not rec.images,
                        f"crash-aborted record {rec.ckpt_id} leaked "
                        f"{len(rec.images)} partial image(s)",
                    )
            crash_note = (
                f", crash leg conserved ({len(crash_res.crashed_ranks)} corpse(s))"
            )
        return f"{total} drained message(s) conserved through restart{crash_note}"


class CrashFaultOracle(Oracle):
    """Crash faults end to end: a dead rank is not a finished rank.

    Hard-kills a rank (the schedule's drawn crash, or a deterministic
    fallback so every seed exercises the path) and verifies: the corpse
    never finishes and reports no result; surviving requests in flight
    abort with a crash-specific reason and keep no images; no round
    commits after the crash; and a restart from the last committed
    image — which excludes the crash — reproduces the uninterrupted
    run's determinism fingerprint.
    """

    name = "crash-fault"
    description = (
        "a hard-killed rank aborts in-flight rounds (distinct reason, "
        "no leaked images), later requests abort immediately, and "
        "restart from the last pre-crash commit matches the "
        "uninterrupted fingerprint"
    )
    cache_aware = False

    def _check_crash_run(
        self,
        label: str,
        crash_res: RunResult,
        crash_times: "dict[int, float]",
    ) -> "tuple[list, list]":
        """Corpse semantics shared by both legs; returns (committed,
        aborted) records of the crash run."""
        self._require(
            set(crash_res.crashed_ranks) <= set(crash_times),
            f"{label}: unexpected corpse(s) {crash_res.crashed_ranks} vs "
            f"injected {sorted(crash_times)}",
        )
        for rank, t in crash_times.items():
            finish = crash_res.rank_finish_times[rank]
            if rank in crash_res.crashed_ranks:
                self._require(
                    finish is None and crash_res.per_rank[rank] is None,
                    f"{label}: crashed rank {rank} still reported a finish "
                    f"({finish!r}) / result — a corpse is not a finished rank",
                )
            else:
                # A rank whose kill never landed either finished first
                # (raced completion and won) — or the job was torn down
                # by an *earlier* corpse before this rank's instant, in
                # which case it neither finishes nor crashes.
                torn_down_first = any(
                    crash_times[other] < t
                    for other in crash_res.crashed_ranks
                    if other != rank
                )
                self._require(
                    (finish is not None and finish <= t) or torn_down_first,
                    f"{label}: rank {rank} neither crashed nor finished "
                    f"before its crash instant {t:g} (finish={finish!r})",
                )
        committed = [r for r in crash_res.checkpoints if r.committed]
        aborted = [r for r in crash_res.checkpoints if r.aborted]
        if crash_res.crashed_ranks:
            first_crash = min(
                t for r, t in crash_times.items() if r in crash_res.crashed_ranks
            )
            for rec in committed:
                self._require(
                    rec.t_request < first_crash,
                    f"{label}: record {rec.ckpt_id} committed from a request "
                    f"at {rec.t_request:g}, after the crash at {first_crash:g}",
                )
            for rec in aborted:
                self._require(
                    "crashed" in rec.abort_reason,
                    f"{label}: record {rec.ckpt_id} aborted without a crash "
                    f"reason: {rec.abort_reason!r}",
                )
                self._require(
                    not rec.images,
                    f"{label}: crash-aborted record {rec.ckpt_id} leaked images",
                )
        return committed, aborted

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        rng = np.random.default_rng(np.random.SeedSequence([0xDEAD, schedule.seed]))
        fallback_rank = int(rng.integers(0, schedule.nprocs))
        early_fracs = schedule.crash_fracs or (
            (fallback_rank, round(float(rng.uniform(0.35, 0.95)), 6)),
        )
        deps: dict = {}
        base = schedule.uninterrupted_spec()
        base_res = execute(base, deps)
        self._require(not base_res.na_reason, f"baseline NA: {base_res.na_reason}")
        deps[base] = base_res  # also the crash specs' probe

        # Leg 1 — the schedule's drawn crash (or an early fallback):
        # typically lands mid-protocol, before any round finishes its
        # storage write, so it exercises the abort/reclaim paths.
        early = schedule.crash_spec(early_fracs)
        early_res = execute(early, deps)
        self._require(not early_res.na_reason, f"crash run NA: {early_res.na_reason}")
        times = {r: f * base_res.runtime for r, f in early_fracs}
        _committed, aborted = self._check_crash_run("early", early_res, times)
        early_note = (
            f"{len(early_res.crashed_ranks)} corpse(s), "
            f"{len(aborted)} crash-abort(s)"
            if early_res.crashed_ranks
            else "crash raced completion and lost"
        )

        # Leg 2 — crash anchored *after* the first round's commit
        # completes (checkpointing stretches the run well past the probe
        # runtime, so drawn fractions of probe runtime land before any
        # commit; this leg is what proves a commit survives a later
        # crash).  The anchor comes from the graceful checkpoint run —
        # deterministic, so the derived spec is too.
        graceful = schedule.checkpoint_spec()
        graceful_res = execute(graceful, deps)
        self._require(
            not graceful_res.na_reason, f"ckpt run NA: {graceful_res.na_reason}"
        )
        commits = [r for r in graceful_res.checkpoints if r.committed]
        self._require(bool(commits), "graceful checkpoint run committed nothing")
        late_frac = round(commits[0].t_resumed * 1.1 / base_res.runtime, 6)
        late = schedule.crash_spec(((fallback_rank, late_frac),))
        late_res = execute(late, deps)
        self._require(not late_res.na_reason, f"late-crash NA: {late_res.na_reason}")
        times = {fallback_rank: late_frac * base_res.runtime}
        committed, _ = self._check_crash_run("late", late_res, times)
        self._require(
            bool(committed),
            "no commit survived a crash anchored after the first round's "
            f"resume ({commits[0].t_resumed:g})",
        )

        # Recovery: restart from the last committed image — which
        # excludes the crash — must reproduce the uninterrupted run.
        deps[late] = late_res
        restart = RunSpec.create(
            "earlyexit",
            schedule.nprocs,
            app_kwargs=schedule._app_kwargs(),
            protocol=schedule.protocol,
            seed=schedule.seed,
            storage=_storage(),
            restart_of=late,
            restart_ckpt=len(committed) - 1,
        )
        restart_res = execute(restart, deps)
        self._require(
            not restart_res.na_reason, f"restart NA: {restart_res.na_reason}"
        )
        want = result_fingerprint(base_res)
        got = result_fingerprint(restart_res)
        self._require(
            got == want,
            f"restart-past-crash fingerprint {got} != uninterrupted {want}",
        )
        return (
            f"early leg: {early_note}; late leg: {len(committed)} pre-crash "
            "commit(s), restart past the crash matches the baseline"
        )


class RecoveryChainOracle(Oracle):
    """Bounded-retry recovery: crash → restart → crash → … → baseline.

    Arms the schedule's drawn crash (or a deterministic fallback) on the
    checkpointed run, then drives :func:`repro.harness.recovery.run_recovery`
    with the schedule's multi-hop plan (``recovery_crash_fracs``; a
    fallback hop is armed when the draw produced none, so every seed
    exercises a crash *on a restart leg*).  Verifies the chain reaches
    clean completion inside the budget, the recovered final fingerprint
    is byte-identical to the uninterrupted run's, no leg leaks images
    out of a crash-aborted round, and per-rank drain conservation holds
    on every hop.
    """

    name = "recovery-chain"
    description = (
        "a crash — even one landing on a restart leg — recovers under "
        "bounded retry to the uninterrupted run's fingerprint, with no "
        "leaked images and drain conservation across every hop"
    )
    cache_aware = False

    def _conserved(self, label: str, res: RunResult) -> None:
        _require_conserved(label, res)

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        from .recovery import (
            RecoveryError,
            RecoveryPolicy,
            resolve_policy,
            run_recovery,
        )

        rng = np.random.default_rng(
            np.random.SeedSequence([0x2ECF, schedule.seed])
        )
        hops = schedule.recovery_crash_fracs or (
            (
                (
                    int(rng.integers(0, schedule.nprocs)),
                    round(float(rng.uniform(0.2, 0.9)), 6),
                ),
            ),
        )

        deps: dict = {}
        base = schedule.uninterrupted_spec()
        base_res = execute(base, deps)
        self._require(not base_res.na_reason, f"baseline NA: {base_res.na_reason}")
        want = result_fingerprint(base_res)

        # Anchor the chain's first crash *after* the first round's commit
        # (drawn fractions of probe runtime land before any commit once
        # checkpointing stretches the run — see the crash-fault oracle's
        # late leg).  With an image committed, recovery leg 1 is an
        # image restart carrying the first hop's faults: a crash landing
        # while survivors rebuild the lower half / replay comm creation /
        # drain restored p2p — the scenario this oracle exists for.  The
        # anchor comes from the graceful checkpoint run, deterministic,
        # so the chain specs are too.
        graceful = schedule.checkpoint_spec()
        graceful_res = execute(graceful, deps)
        self._require(
            not graceful_res.na_reason, f"ckpt run NA: {graceful_res.na_reason}"
        )
        commits = [r for r in graceful_res.checkpoints if r.committed]
        self._require(bool(commits), "graceful checkpoint run committed nothing")
        instant = commits[0].t_resumed * 1.05
        # The crash run's timeline is identical to the graceful run's up
        # to the crash, so the graceful finish times tell us who is
        # still alive at the instant — a victim that already exited
        # would lose the race and the chain would never start.  Prefer a
        # drawn crash rank when one qualifies.
        finish = graceful_res.rank_finish_times
        alive = [
            r
            for r in range(schedule.nprocs)
            if finish[r] is None or finish[r] > instant
        ]
        if alive:
            drawn = [r for r, _f in schedule.crash_fracs if r in alive]
            victim = drawn[0] if drawn else alive[int(rng.integers(0, len(alive)))]
            crash_fracs = ((victim, round(instant / base_res.runtime, 6)),)
        else:
            # Every rank exited before the first commit (a terminal
            # snapshot from a request that raced completion past all
            # exits): no post-commit crash exists, so this seed
            # exercises the *degraded* chain — an early crash that
            # commits nothing and recovers from scratch.
            crash_fracs = schedule.crash_fracs or (
                (
                    int(rng.integers(0, schedule.nprocs)),
                    round(float(rng.uniform(0.3, 0.9)), 6),
                ),
            )

        # Every leg runs in-process through a private engine: the chain
        # is the subject under test, so its execution must not depend on
        # whatever dispatch backend the sweep itself fans out with.
        leg_engine = ExperimentEngine(dispatch="inline")
        # Budget: enough for every armed hop plus slack, and never less
        # than the resolved default (--max-attempts can only raise it —
        # a user-lowered budget must not fail chains by construction).
        policy = RecoveryPolicy(
            max_attempts=max(
                resolve_policy(None).max_attempts, len(hops) + 2
            )
        )
        outcome = run_recovery(
            schedule.crash_spec(crash_fracs),
            policy,
            leg_faults=hops,
            engine=leg_engine,
        )
        if not outcome.completed:
            raise RecoveryError(
                f"retry budget ({policy.max_attempts}) exhausted: "
                + outcome.describe()
            )
        if alive:
            self._require(
                any(
                    a.spec.restart_of is not None for a in outcome.attempts[1:]
                ),
                "chain never took an image-restart leg despite a post-commit "
                "crash: " + outcome.describe(),
            )

        for i, attempt in enumerate(outcome.attempts):
            label = f"leg {i} ({attempt.restarted_from})"
            res = attempt.result
            self._require(not res.na_reason, f"{label} NA: {res.na_reason}")
            self._conserved(label, res)
            for rec in res.checkpoints:
                if rec.aborted:
                    self._require(
                        not rec.images,
                        f"{label}: crash-aborted record {rec.ckpt_id} leaked "
                        f"{len(rec.images)} image(s)",
                    )
                if rec.aborted and res.crashed_ranks:
                    self._require(
                        "crashed" in rec.abort_reason,
                        f"{label}: abort without a crash-specific reason: "
                        f"{rec.abort_reason!r}",
                    )

        got = result_fingerprint(outcome.final_result)
        self._require(
            got == want,
            f"recovered fingerprint {got} != uninterrupted {want} "
            f"({outcome.describe()})",
        )
        restart_leg_crashes = sum(
            1
            for a in outcome.attempts
            if a.spec.restart_of is not None and a.crashed
        )
        return (
            f"{outcome.describe()}; {restart_leg_crashes} restart-leg "
            f"crash(es), fingerprint matches baseline, chain {outcome.chain_key()}"
        )


class ScenarioInvarianceOracle(Oracle):
    """Every registered scenario preserves the system's invariants.

    Per scenario: the checkpointed run commits, drain conservation
    holds on every rank, safe-cut structure matches the offline
    topological-sort fixpoint, and the serialized result is
    byte-identical across the ``threads``/``inline`` execution backends
    and the ``inline``/``local-pool``/``service`` dispatch backends —
    a scenario may change *what happens*, never *whether it is
    deterministic*.
    """

    name = "scenario-invariance"
    description = (
        "every registered scenario commits, conserves drains, keeps the "
        "safe cut, and is byte-identical across execution and dispatch "
        "backends"
    )
    cache_aware = False

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        names = sorted(SCENARIOS)
        specs = {
            name: replace(schedule, scenario=name).checkpoint_spec()
            for name in names
        }
        # Execution backends, in-process dispatch: the reference hashes.
        ref: "dict[str, str]" = {}
        for name in names:
            for backend in ("threads", "inline"):
                res = ExperimentEngine(
                    backend=backend, dispatch="inline"
                ).run(specs[name])
                self._require(
                    not res.na_reason, f"{name}/{backend}: NA: {res.na_reason}"
                )
                _require_conserved(f"{name}/{backend}", res)
                self._require(
                    any(r.committed for r in res.checkpoints),
                    f"{name}/{backend}: checkpoint run committed nothing",
                )
                digest = stable_json_hash(run_result_to_dict(res))
                if backend == "threads":
                    ref[name] = digest
                else:
                    self._require(
                        digest == ref[name],
                        f"{name}: inline-backend result {digest} != "
                        f"threads {ref[name]}",
                    )
        # Dispatch backends: the same specs as one batch per backend.
        batch = [specs[name] for name in names]
        pool = ExperimentEngine(jobs=2, dispatch="local-pool").run_batch(batch)
        for name in names:
            digest = stable_json_hash(run_result_to_dict(pool[specs[name]]))
            self._require(
                digest == ref[name],
                f"{name}: local-pool result {digest} != inline dispatch "
                f"{ref[name]}",
            )
        self._service_pass(batch, specs, ref)
        # Safe-cut structure under every scenario.
        for name in names:
            _safe_cut_detail(schedule, scenario=name)
        return (
            f"{len(names)} scenario(s) committed, conserved, cut-safe, and "
            "byte-identical across threads/inline execution and "
            "inline/local-pool/service dispatch"
        )

    def _service_pass(
        self,
        batch: "list[RunSpec]",
        specs: "dict[str, RunSpec]",
        ref: "dict[str, str]",
    ) -> None:
        import threading

        from .service import ExperimentServer, run_worker

        with tempfile.TemporaryDirectory(prefix="repro-scenario-") as tmp:
            server = ExperimentServer("127.0.0.1", 0, cache_dir=tmp)
            host, port = server.start()
            worker = threading.Thread(
                target=run_worker, args=((host, port),), daemon=True
            )
            worker.start()
            try:
                results = ExperimentEngine(
                    dispatch="service", service=f"{host}:{port}"
                ).run_batch(batch)
                for name in sorted(specs):
                    digest = stable_json_hash(
                        run_result_to_dict(results[specs[name]])
                    )
                    self._require(
                        digest == ref[name],
                        f"{name}: service result {digest} != inline dispatch "
                        f"{ref[name]}",
                    )
            finally:
                server.shutdown()
                worker.join(timeout=10)


#: Oracle catalog, ``--oracle`` spelling -> instance.
ORACLES: "dict[str, Oracle]" = {
    oracle.name: oracle
    for oracle in (
        RankCompletionOracle(),
        SafeCutOracle(),
        EngineEquivalenceOracle(),
        ImageTierOracle(),
        DrainConservationOracle(),
        CrashFaultOracle(),
        RecoveryChainOracle(),
        ScenarioInvarianceOracle(),
    )
}


def _check_one(name: str, seed: int) -> dict:
    """Top-level worker entry point (picklable by name for spawn)."""
    return ORACLES[name].check(seed).as_dict()


def run_oracles(
    names: Iterable[str],
    seeds: Iterable[int],
    *,
    engine: "ExperimentEngine | None" = None,
    progress=None,
    jobs: int = 1,
    dispatch: "str | None" = None,
    service: "str | None" = None,
) -> "list[OracleReport]":
    """Sweep the named oracles over ``seeds``; returns every report.

    ``progress``, if given, is called with each report as it lands.
    Unknown oracle names raise ``KeyError`` with the catalog spelled out.

    ``jobs > 1`` fans the (oracle, seed) grid through the job-dispatch
    seam (:mod:`repro.harness.dispatch`): ``local-pool`` keeps the
    historical spawn-safe pool, ``inline`` runs in-process, ``service``
    ships each check to an experiment-service fleet.  Reports come back
    in the same (oracle-order, seed-order) sequence as a serial sweep
    and carry the same contents — each check is an independent
    simulation, so the fan-out can only change wall time, never a
    report (``tests/verify`` pins the byte-identity).
    """
    from .dispatch import (
        DispatchConfig,
        create_dispatch,
        resolve_dispatch,
        resolve_service_addr,
    )

    seeds = list(seeds)
    tasks: list[tuple[str, int]] = []
    for name in names:
        if name not in ORACLES:
            raise KeyError(
                f"unknown oracle {name!r}; expected one of {sorted(ORACLES)}"
            )
        tasks.extend((name, seed) for seed in seeds)

    reports: list[OracleReport] = []
    resolved = resolve_dispatch(dispatch)
    # The serial fast path keeps the caller's (cache-aware) engine in
    # the loop; a service sweep routes through the seam even at jobs=1
    # — that's the point of asking for it.
    if resolved != "service" and (jobs <= 1 or len(tasks) <= 1):
        for name, seed in tasks:
            report = ORACLES[name].check(seed, engine)
            reports.append(report)
            if progress is not None:
                progress(report)
        return reports

    backend = create_dispatch(
        resolved,
        DispatchConfig(
            jobs=jobs,
            service_addr=(
                resolve_service_addr(service) if resolved == "service" else None
            ),
        ),
    )
    with backend:
        handles = [
            backend.submit_check(
                name, schedule_to_dict(FaultSchedule.draw(seed))
            )
            for name, seed in tasks
        ]
        # Collect in submission order, not completion order: the report
        # sequence (and any serialized artifact) must be byte-identical
        # to a serial sweep's.
        for (name, seed), handle in zip(tasks, handles):
            doc = dict(handle.result()["report"])
            # A drawn schedule re-checked via check_schedule reports its
            # own seed; assert rather than trust blindly.
            doc.setdefault("oracle", name)
            report = OracleReport(**doc)
            reports.append(report)
            if progress is not None:
                progress(report)
    return reports
