"""Fault-injection + differential-oracle verification subsystem.

The paper's central claim — a topological sort over collective
dependencies yields a *safe cut* under any interleaving of checkpoint
requests and application progress — is the kind of property that only
systematic adversarial validation keeps true as the system grows.  This
module turns the repo's ad-hoc oracles (the online-vs-offline cut test,
the serial-vs-parallel engine comparisons, the cold-vs-warm image-tier
differentials) into one reusable subsystem:

* :class:`FaultSchedule` — a seed-deterministic draw of the adversarial
  knobs: checkpoint-request timing (mid-run fractions *and*
  completion-window fractions that race rank exits), rank-completion
  staggering (the ``earlyexit`` app's shape), and restart depth.  The
  schedule's perturbations reach simulation through declarative
  :class:`RunSpec` fields (``checkpoint_fractions``,
  ``checkpoint_completion_fracs``, app kwargs), so they enter the spec
  content hash and the result cache just like any figure cell.
* :class:`Oracle` — one check: run the scenario a fault schedule
  describes and compare two independent derivations of the same truth
  (online vs offline cut, interrupted vs uninterrupted fingerprint,
  serial vs parallel engine, cold vs warm tier).
* :func:`run_oracles` — sweep oracles over seeds; every failure carries
  a *derandomized reproduction command* (``repro-mpi verify --oracle X
  --seeds 1 --base-seed N``) so a nightly CI hit replays locally in one
  paste.

``repro-mpi verify`` is the CLI face (cache-aware where an oracle
permits, ``--bench-json``, failing-seed artifact on mismatch).
"""

from __future__ import annotations

import tempfile
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..util.hashing import stable_json_hash
from .cache import ResultCache
from .engine import ExperimentEngine
from .runner import RunResult
from .spec import (
    RunSpec,
    _canonical_value,
    execute,
    run_result_to_dict,
)

__all__ = [
    "FaultSchedule",
    "Oracle",
    "OracleMismatch",
    "OracleReport",
    "ORACLES",
    "program_position_for",
    "result_fingerprint",
    "run_oracles",
]


class OracleMismatch(AssertionError):
    """An oracle's two derivations of the same truth disagreed."""


def result_fingerprint(result: RunResult) -> str:
    """Determinism fingerprint of a run's application-visible outcome.

    Per-rank results only: virtual times, event counts, and checkpoint
    phase timings legitimately differ between an uninterrupted run and
    a restart — what must be byte-identical is what the application
    computed.
    """
    return stable_json_hash(_canonical_value(result.per_rank))


def program_position_for(program, rank: int, counts: dict) -> int:
    """Program position matching a rank's per-group executed counts.

    The inverse projection the safe-cut oracle needs: SEQ tables count
    per-group executions, positions index the rank's op sequence.
    """
    remaining = dict(counts)
    pos = 0
    for g in program.ops[rank]:
        if all(v <= 0 for v in remaining.values()):
            break
        if remaining.get(g, 0) > 0:
            remaining[g] -= 1
            pos += 1
        else:
            if any(v > 0 for v in remaining.values()):
                raise OracleMismatch(
                    f"rank {rank}: counts {counts} unreachable in program"
                )
            break
    if any(v != 0 for v in remaining.values()):
        raise OracleMismatch(
            f"rank {rank}: counts {counts} leave remainder {remaining}"
        )
    return pos


# --------------------------------------------------------------------- #
# Fault schedules
# --------------------------------------------------------------------- #

#: Modest storage so checkpoint phases stay fast at verification scale.
def _storage():
    from ..netmodel import StorageModel

    return StorageModel(base_latency=1e-4)


@dataclass(frozen=True)
class FaultSchedule:
    """One seed's adversarial scenario, fully declarative.

    Everything here flows into :class:`RunSpec` fields or app kwargs,
    so equal schedules build equal (content-hashed, cacheable) specs.
    """

    seed: int
    protocol: str = "cc"
    nprocs: int = 4
    niters: int = 12
    shared: int = 4
    leavers: int = 1
    #: Request instants as fractions of the probe's earliest rank
    #: finish — the completion-race window (may exceed 1.0: requests
    #: landing after ranks exited).
    completion_fracs: tuple[float, ...] = (0.99,)
    #: Additional mid-run request instants (fractions of probe runtime).
    mid_fracs: tuple[float, ...] = ()
    #: How many restart legs to chain from the committed images.
    restart_depth: int = 1
    #: Which committed checkpoint the first restart adopts.
    restart_ckpt: int = 0

    @classmethod
    def draw(
        cls, seed: int, *, protocols: Sequence[str] = ("cc", "2pc")
    ) -> "FaultSchedule":
        """Deterministically derive a schedule from ``seed``.

        The draw covers the scenario axes the coordinator historically
        got wrong: requests just before/at/after the first rank exit,
        requests stacked so some defer behind an in-flight round, both
        protocols, and single/chained restarts.
        """
        rng = np.random.default_rng(np.random.SeedSequence([0x5EED, seed]))
        nprocs = int(rng.integers(3, 6))
        niters = int(rng.integers(10, 15))
        shared = int(rng.integers(3, min(6, niters)))
        leavers = int(rng.integers(1, max(2, nprocs - 1)))
        n_completion = int(rng.integers(1, 3))
        completion_fracs = tuple(
            round(float(f), 6) for f in rng.uniform(0.85, 1.15, n_completion)
        )
        mid_fracs = (
            (round(float(rng.uniform(0.2, 0.7)), 6),)
            if rng.random() < 0.5
            else ()
        )
        n_commits = n_completion + len(mid_fracs)
        return cls(
            seed=seed,
            protocol=str(rng.choice(list(protocols))),
            nprocs=nprocs,
            niters=niters,
            shared=shared,
            leavers=leavers,
            completion_fracs=completion_fracs,
            mid_fracs=mid_fracs,
            restart_depth=int(rng.integers(1, 3)),
            restart_ckpt=int(rng.integers(0, n_commits)),
        )

    # -- spec builders ------------------------------------------------- #

    def _app_kwargs(self) -> dict:
        return {
            "niters": self.niters,
            "shared": self.shared,
            "leavers": self.leavers,
            "memory_bytes": 1 << 20,
        }

    def uninterrupted_spec(self) -> RunSpec:
        """The baseline run (identical to the checkpoint spec's probe,
        so the engine dedupes the two)."""
        return RunSpec.create(
            "earlyexit",
            self.nprocs,
            app_kwargs=self._app_kwargs(),
            protocol=self.protocol,
            seed=self.seed,
            storage=_storage(),
        )

    def checkpoint_spec(self) -> RunSpec:
        """The perturbed run: requests racing rank completion (plus any
        mid-run requests)."""
        return RunSpec.create(
            "earlyexit",
            self.nprocs,
            app_kwargs=self._app_kwargs(),
            protocol=self.protocol,
            seed=self.seed,
            checkpoint_fractions=self.mid_fracs,
            checkpoint_completion_fracs=self.completion_fracs,
            storage=_storage(),
        )

    def restart_chain(self, base_runtime: float) -> "list[RunSpec]":
        """``restart_depth`` chained restart specs from the checkpoint
        run's commits.

        Intermediate legs carry their own absolute-time request so the
        next leg has an image set to adopt; the request instant is a
        pure function of the (deterministic) base runtime, so the chain
        specs are cache-stable.
        """
        chain: list[RunSpec] = []
        parent = self.checkpoint_spec()
        ckpt_index = self.restart_ckpt
        for depth in range(self.restart_depth):
            last = depth == self.restart_depth - 1
            chain.append(
                RunSpec.create(
                    "earlyexit",
                    self.nprocs,
                    app_kwargs=self._app_kwargs(),
                    protocol=self.protocol,
                    seed=self.seed,
                    storage=_storage(),
                    restart_of=parent,
                    restart_ckpt=ckpt_index,
                    # Intermediate legs re-checkpoint (possibly past
                    # their own completion: a terminal snapshot is a
                    # legal parent now) so the chain can keep going.
                    checkpoint_at=() if last else (base_runtime * 1.5,),
                )
            )
            parent = chain[-1]
            ckpt_index = 0
        return chain


# --------------------------------------------------------------------- #
# Oracles
# --------------------------------------------------------------------- #

@dataclass
class OracleReport:
    """One oracle × seed outcome."""

    oracle: str
    seed: int
    ok: bool
    detail: str = ""
    #: Derandomized one-paste reproduction command.
    repro: str = ""

    def as_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "seed": self.seed,
            "ok": self.ok,
            "detail": self.detail,
            "repro": self.repro,
        }


class Oracle(ABC):
    """One differential check, sweepable over fault-schedule seeds."""

    #: Registry key and ``--oracle`` spelling.
    name: str = "abstract"
    #: One-line catalog entry (README / ``--help``).
    description: str = ""
    #: Whether the check can serve (and warm) the shared result cache.
    cache_aware: bool = False

    def check(self, seed: int, engine: "ExperimentEngine | None" = None) -> OracleReport:
        """Run the check for one seed; never raises.

        A mismatch is the oracle's verdict; any *other* exception — a
        ProtocolError, a simulated deadlock, a spec error — is exactly
        the kind of fault the sweep exists to surface, so it becomes a
        failing report too (with the same derandomized repro command)
        instead of crashing the remaining seeds and losing the artifact.
        """
        if engine is None or not self.cache_aware:
            engine = ExperimentEngine()
        try:
            detail = self.verify(FaultSchedule.draw(seed), engine)
            ok = True
        except OracleMismatch as exc:
            detail = str(exc)
            ok = False
        except Exception as exc:  # noqa: BLE001 - reported, never swallowed
            detail = f"oracle crashed: {type(exc).__name__}: {exc}"
            ok = False
        return OracleReport(
            oracle=self.name,
            seed=seed,
            ok=ok,
            detail=detail,
            repro=f"repro-mpi verify --oracle {self.name} --seeds 1 --base-seed {seed}",
        )

    @abstractmethod
    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        """Perform the check; return a human-readable detail line or
        raise :class:`OracleMismatch`."""

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise OracleMismatch(message)


class RankCompletionOracle(Oracle):
    """Checkpoint-through-rank-completion, end to end.

    A round racing rank completion must COMMIT (no ``abort_reason``),
    the interrupted run must finish with the uninterrupted run's
    per-rank results, and restarting from the committed images — to the
    schedule's chained depth — must reproduce the same determinism
    fingerprint.
    """

    name = "rank-completion"
    description = (
        "requests racing rank exits commit, and restart chains from the "
        "committed images reproduce the uninterrupted fingerprint"
    )
    cache_aware = True

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        base = schedule.uninterrupted_spec()
        ckpt = schedule.checkpoint_spec()
        results = engine.run_batch([base, ckpt])
        base_res, ckpt_res = results[base], results[ckpt]
        self._require(not base_res.na_reason, f"baseline NA: {base_res.na_reason}")
        self._require(not ckpt_res.na_reason, f"ckpt run NA: {ckpt_res.na_reason}")

        n_requests = len(schedule.completion_fracs) + len(schedule.mid_fracs)
        self._require(
            len(ckpt_res.checkpoints) == n_requests,
            f"{n_requests} requests produced {len(ckpt_res.checkpoints)} records",
        )
        aborted = [r for r in ckpt_res.checkpoints if r.aborted or r.abort_reason]
        self._require(
            not aborted,
            "round(s) aborted instead of committing through completion: "
            + "; ".join(r.abort_reason or "<no reason>" for r in aborted),
        )
        self._require(
            all(r.committed for r in ckpt_res.checkpoints),
            "not every record committed",
        )

        want = result_fingerprint(base_res)
        got = result_fingerprint(ckpt_res)
        self._require(
            got == want,
            f"interrupted run fingerprint {got} != uninterrupted {want}",
        )

        chain = schedule.restart_chain(base_res.runtime)
        chain_res = engine.run_batch(chain)
        final = chain_res[chain[-1]]
        self._require(not final.na_reason, f"restart NA: {final.na_reason}")
        got = result_fingerprint(final)
        self._require(
            got == want,
            f"depth-{schedule.restart_depth} restart fingerprint {got} != "
            f"uninterrupted {want}",
        )
        finished_images = sum(
            1
            for rec in ckpt_res.checkpoints
            for im in rec.images.values()
            if getattr(im, "finished", False)
        )
        return (
            f"{n_requests} commit(s), {finished_images} finished-rank "
            f"image(s), depth-{schedule.restart_depth} restart fingerprint ok"
        )


class SafeCutOracle(Oracle):
    """Online CC cut vs the offline topological-sort fixpoint.

    Runs the schedule-known ``scheduled`` app, checkpoints it at a
    seed-drawn instant, and verifies the per-group SEQ values frozen in
    the images equal :func:`repro.core.graph.compute_safe_cut` applied
    to the request-time reports (paper Section 4.2.2).  Executes fresh
    (never from cache): the comparison needs the full images' SEQ
    tables, which never cross the JSON boundary.
    """

    name = "safe-cut"
    description = (
        "committed SEQ tables equal the offline topological-sort fixpoint "
        "of the request-time reports"
    )
    cache_aware = False

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        from ..apps.scheduled import ScheduledMix
        from ..core import compute_safe_cut

        rng = np.random.default_rng(np.random.SeedSequence([0xC0DE, schedule.seed]))
        nprocs = int(rng.choice([4, 6]))
        niters = int(rng.integers(8, 13))
        frac = float(rng.uniform(0.15, 1.05))
        app_kwargs = {
            "niters": niters,
            "nprocs": nprocs,
            "schedule_seed": schedule.seed,
        }
        spec = RunSpec.create(
            "scheduled",
            nprocs,
            app_kwargs=app_kwargs,
            protocol="cc",
            seed=2,
            checkpoint_fractions=(frac,),
            storage=_storage(),
        )
        result = execute(spec)
        self._require(not result.na_reason, f"run NA: {result.na_reason}")
        committed = [r for r in result.checkpoints if r.committed]
        self._require(bool(committed), "request did not commit")

        program = ScheduledMix(**app_kwargs).offline_program()
        checked = 0
        for rec in committed:
            start = tuple(
                program_position_for(program, r, rec.seq_reports.get(r, {}))
                for r in range(nprocs)
            )
            cut = compute_safe_cut(program, start)
            for g, target in cut.targets.items():
                for r in program.members[g]:
                    snap = rec.images[r].seq_table["seq"].get(g, 0)
                    self._require(
                        snap == target,
                        f"group {g:#x}: rank {r} snapshot seq {snap} != "
                        f"oracle target {target}",
                    )
                    checked += 1
        return f"{len(committed)} cut(s), {checked} (group, rank) targets match"


class EngineEquivalenceOracle(Oracle):
    """Serial vs parallel engine execution of one deduplicated batch.

    The same specs — probe, checkpointed run, restart — through
    ``jobs=1`` and ``jobs=2`` engines (both cache-less, so both actually
    simulate) must serialize to byte-identical results.
    """

    name = "engine"
    description = (
        "a probe/checkpoint/restart batch is byte-identical between "
        "serial and parallel engine execution"
    )
    cache_aware = False

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        base = schedule.uninterrupted_spec()
        ckpt = schedule.checkpoint_spec()
        restart = RunSpec.create(
            "earlyexit",
            schedule.nprocs,
            app_kwargs=schedule._app_kwargs(),
            protocol=schedule.protocol,
            seed=schedule.seed,
            storage=_storage(),
            restart_of=ckpt,
        )
        specs = [base, ckpt, restart]
        serial = ExperimentEngine(jobs=1).run_batch(specs)
        parallel = ExperimentEngine(jobs=2).run_batch(specs)
        for spec in specs:
            a = stable_json_hash(run_result_to_dict(serial[spec]))
            b = stable_json_hash(run_result_to_dict(parallel[spec]))
            self._require(
                a == b,
                f"{spec.label()}: serial result {a} != parallel {b}",
            )
        return f"{len(specs)} specs byte-identical across jobs=1 and jobs=2"


class ImageTierOracle(Oracle):
    """Cold vs warm restart: the image tier must be invisible in results.

    A restart whose parent is re-simulated inline (cold) and the same
    restart fed the parent's committed images from a freshly-populated
    cache tier (warm) must serialize identically — and the warm run
    must actually have used the tier.
    """

    name = "image-tier"
    description = (
        "a tier-fed warm restart is byte-identical to a cold recompute "
        "and simulates zero parents"
    )
    cache_aware = False

    def verify(self, schedule: FaultSchedule, engine: ExperimentEngine) -> str:
        parent = schedule.checkpoint_spec()
        restart = RunSpec.create(
            "earlyexit",
            schedule.nprocs,
            app_kwargs=schedule._app_kwargs(),
            protocol=schedule.protocol,
            seed=schedule.seed,
            storage=_storage(),
            restart_of=parent,
            restart_ckpt=schedule.restart_ckpt,
        )
        cold = execute(restart)
        self._require(not cold.na_reason, f"cold restart NA: {cold.na_reason}")
        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            ExperimentEngine(cache=ResultCache(tmp)).run(parent)
            warm_engine = ExperimentEngine(cache=ResultCache(tmp))
            warm = warm_engine.run(restart)
            stats = warm_engine.last_stats
            self._require(
                stats is not None and stats.images_reused == 1,
                "warm restart did not load its parent from the image tier",
            )
            self._require(
                stats.executed == 1,
                f"warm restart simulated {stats.executed} jobs (expected 1: "
                "the restart alone)",
            )
        a = stable_json_hash(run_result_to_dict(cold))
        b = stable_json_hash(run_result_to_dict(warm))
        self._require(a == b, f"cold restart {a} != warm tier-fed restart {b}")
        return "cold == warm, parent served from tier"


#: Oracle catalog, ``--oracle`` spelling -> instance.
ORACLES: "dict[str, Oracle]" = {
    oracle.name: oracle
    for oracle in (
        RankCompletionOracle(),
        SafeCutOracle(),
        EngineEquivalenceOracle(),
        ImageTierOracle(),
    )
}


def run_oracles(
    names: Iterable[str],
    seeds: Iterable[int],
    *,
    engine: "ExperimentEngine | None" = None,
    progress=None,
) -> "list[OracleReport]":
    """Sweep the named oracles over ``seeds``; returns every report.

    ``progress``, if given, is called with each report as it lands.
    Unknown oracle names raise ``KeyError`` with the catalog spelled out.
    """
    reports = []
    for name in names:
        try:
            oracle = ORACLES[name]
        except KeyError:
            raise KeyError(
                f"unknown oracle {name!r}; expected one of {sorted(ORACLES)}"
            ) from None
        for seed in seeds:
            report = oracle.check(seed, engine)
            reports.append(report)
            if progress is not None:
                progress(report)
    return reports
