"""Pluggable job-dispatch backends for the experiment engine.

PR 6 extracted the DES kernel's suspend/resume mechanics behind an
execution-backend seam (:mod:`repro.des.backends`); this module applies
the same seam-extraction one layer up, to the engine's *job dispatch*:
how a wave of independent :class:`~repro.harness.spec.RunSpec` jobs is
fanned out and collected.  Three backends implement the seam:

* ``local-pool`` — the seed mechanics, verbatim: a spawn-safe
  ``ProcessPoolExecutor`` per wave (``jobs=N``), degrading to in-process
  execution for one-job waves or ``jobs=1``.  This is the differential
  reference every other backend must match byte-for-byte.
* ``inline`` — every job runs in the submitting process, in submission
  order.  Zero process overhead; the debugging backend (breakpoints and
  tracebacks land in *your* interpreter).
* ``service`` — jobs are shipped over a socket to a long-lived
  experiment server (:mod:`repro.harness.service`) speaking a
  line-delimited JSON protocol.  Pull-model workers
  (``repro-mpi worker --connect HOST:PORT``) execute them, the shared
  content-addressed :class:`~repro.harness.cache.ResultCache` (results
  + deduped image blobs) is the artifact store, and many clients hit
  one warm cache.

Besides simulation jobs, the seam carries **oracle-check jobs** (one
:class:`~repro.harness.verify.FaultSchedule` through one oracle) so
``repro-mpi verify --jobs`` and ``repro-mpi fuzz --jobs`` fan out
through exactly the same backends — a service fleet can absorb a fuzz
run the same way it absorbs a sweep.

Selection precedence mirrors :mod:`repro.des.backends` (first match
wins):

1. explicit ``ExperimentEngine(dispatch=...)`` / ``--dispatch`` flag;
2. process-wide default via :func:`set_default_dispatch`;
3. the ``REPRO_DISPATCH`` environment variable;
4. ``auto``: ``service`` when a service address is known (the
   ``REPRO_SERVICE_ADDR`` environment variable), else ``local-pool``.

Asking for ``service`` without an address is a loud error, never a
silent fallback.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Iterable, Iterator

__all__ = [
    "DISPATCH_BACKENDS",
    "ENV_VAR",
    "ENV_ADDR",
    "DispatchBackend",
    "DispatchConfig",
    "DispatchError",
    "DispatchJob",
    "create_dispatch",
    "get_default_dispatch",
    "parse_address",
    "resolve_dispatch",
    "resolve_service_addr",
    "set_default_dispatch",
]

#: Concrete dispatch backend names, in documentation order.
DISPATCH_BACKENDS = ("local-pool", "inline", "service")

#: Environment variable consulted when no explicit choice was made.
ENV_VAR = "REPRO_DISPATCH"

#: Environment variable naming the experiment service (``HOST:PORT``).
ENV_ADDR = "REPRO_SERVICE_ADDR"

_default_dispatch: str | None = None


class DispatchError(RuntimeError):
    """Misconfigured or failed job dispatch."""


def set_default_dispatch(name: str | None) -> None:
    """Install a process-wide default dispatch backend (``None`` clears)."""
    global _default_dispatch
    if name is not None:
        _check_name(name)
    _default_dispatch = name


def get_default_dispatch() -> str | None:
    return _default_dispatch


def resolve_dispatch(name: str | None = None) -> str:
    """Resolve a dispatch request to a concrete, validated name.

    Precedence: explicit ``name`` > :func:`set_default_dispatch` >
    ``$REPRO_DISPATCH`` > auto (``service`` when ``$REPRO_SERVICE_ADDR``
    is set, else ``local-pool``).
    """
    if name is None:
        name = _default_dispatch
    if name is None:
        name = os.environ.get(ENV_VAR) or None
    if name is None or name == "auto":
        return "service" if os.environ.get(ENV_ADDR) else "local-pool"
    _check_name(name)
    return name


def _check_name(name: str) -> None:
    if name != "auto" and name not in DISPATCH_BACKENDS:
        raise ValueError(
            f"unknown dispatch backend {name!r}; expected 'auto' or one of "
            + ", ".join(repr(b) for b in DISPATCH_BACKENDS)
        )


def parse_address(text: str) -> tuple[str, int]:
    """``HOST:PORT`` -> ``(host, port)`` (loud on anything else)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise DispatchError(
            f"service address must look like HOST:PORT, got {text!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise DispatchError(
            f"service address port must be an integer, got {text!r}"
        ) from None


def resolve_service_addr(explicit: str | None = None) -> tuple[str, int]:
    """The experiment service address: explicit argument, else
    ``$REPRO_SERVICE_ADDR``; loud when neither is set."""
    text = explicit or os.environ.get(ENV_ADDR)
    if not text:
        raise DispatchError(
            "dispatch backend 'service' needs a server address: pass "
            "--service HOST:PORT (or set REPRO_SERVICE_ADDR), and start "
            "one with `repro-mpi serve`"
        )
    return parse_address(text)


# --------------------------------------------------------------------- #
# The seam
# --------------------------------------------------------------------- #

@dataclass
class DispatchConfig:
    """Everything a backend needs to execute jobs faithfully.

    ``cache_dir`` roots the shared artifact store (results + image
    tier); ``None`` means the submitting engine runs cache-less and
    jobs must neither read nor write any store.  ``sim_backend`` is the
    *resolved* kernel execution backend, forwarded so every process in
    the fan-out (pool worker, service worker) simulates identically to
    the submitter.
    """

    jobs: int = 1
    cache_dir: "str | None" = None
    guard: "int | None" = None
    sim_backend: "str | None" = None
    service_addr: "tuple[str, int] | None" = None


class DispatchJob:
    """Future-like handle for one submitted job.

    ``kind`` is ``"sim"`` (payload: spec + deps) or ``"check"``
    (payload: oracle name + schedule document).  :meth:`result` pumps
    the backend's completion stream until this job lands — results for
    other jobs completing in the meantime are retained and delivered by
    their own handles, so mixing :meth:`result` with
    :meth:`DispatchBackend.drain` is safe.
    """

    __slots__ = ("kind", "spec", "oracle", "schedule", "key", "_backend",
                 "_value", "_done")

    def __init__(self, backend: "DispatchBackend", kind: str, *,
                 spec=None, oracle: str | None = None,
                 schedule: dict | None = None):
        self.kind = kind
        self.spec = spec
        self.oracle = oracle
        self.schedule = schedule
        self.key: str | None = None
        self._backend = backend
        self._value: Any = None
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._done = True

    def result(self) -> Any:
        """Block until this job completes; returns its value.

        Sim jobs resolve to ``(result, elapsed, served, cached)``;
        check jobs resolve to the report dictionary.
        """
        while not self._done:
            self._backend._pump()
        return self._value


class DispatchBackend(ABC):
    """One way of executing a wave of independent jobs.

    Lifecycle: any number of :meth:`submit`/:meth:`submit_check` calls,
    then :meth:`drain` (or per-handle :meth:`DispatchJob.result`) until
    every submitted job resolved, repeated per wave; :meth:`close`
    releases any long-lived resources (the service connection).  The
    backend must deliver results *identical* to in-process execution —
    dispatch may change wall time, never a result.
    """

    def __init__(self, config: DispatchConfig):
        self.config = config
        self._pending: "list[DispatchJob]" = []

    # -- submission ----------------------------------------------------- #

    def submit(self, spec, deps) -> DispatchJob:
        """Queue one simulation job; returns its future-like handle."""
        job = DispatchJob(self, "sim", spec=spec)
        self._track(job)
        self._enqueue(job, self._sim_payload(spec, deps))
        return job

    def submit_check(self, oracle: str, schedule: dict) -> DispatchJob:
        """Queue one oracle-check job (verify/fuzz fan-out)."""
        job = DispatchJob(self, "check", oracle=oracle, schedule=schedule)
        self._track(job)
        self._enqueue(job, {"kind": "check", "oracle": oracle,
                            "schedule": dict(schedule)})
        return job

    def _track(self, job: DispatchJob) -> None:
        # Drop already-resolved handles so long-lived backends (a fuzz
        # run submitting thousands of checks) don't accumulate them.
        if self._pending and self._pending[0].done:
            self._pending = [j for j in self._pending if not j.done]
        self._pending.append(job)

    def _sim_payload(self, spec, deps) -> dict:
        return {"kind": "sim", "spec": spec, "deps": deps}

    # -- collection ----------------------------------------------------- #

    def drain(self) -> "Iterator[DispatchJob]":
        """Yield every outstanding job as it completes.

        Completion order is backend-defined (submission order for
        ``inline``; completion order for pools and the service); the
        caller keys results by handle, so ordering never changes a
        batch's outcome.
        """
        while any(not job.done for job in self._pending):
            yield self._pump()
        self._pending.clear()

    def close(self) -> None:
        """Release long-lived resources (idempotent)."""

    def __enter__(self) -> "DispatchBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- backend mechanics ---------------------------------------------- #

    @abstractmethod
    def _enqueue(self, job: DispatchJob, payload: dict) -> None:
        """Accept one job for execution."""

    @abstractmethod
    def _pump(self) -> DispatchJob:
        """Advance until one more outstanding job completes; resolve and
        return its handle."""


# --------------------------------------------------------------------- #
# Job bodies (shared by every backend's workers)
# --------------------------------------------------------------------- #

def _run_sim_job(spec, deps, config: DispatchConfig):
    """Execute one simulation job; returns (result, elapsed, served).

    Goes through :func:`repro.harness.engine._execute_job` *via the
    module attribute* so tests (and tools) that monkeypatch the engine's
    job runner see every dispatch backend's in-process executions.
    """
    from . import engine as engine_mod

    return engine_mod._execute_job(
        spec, deps, config.guard, config.cache_dir, config.sim_backend
    )


def _run_check_job(oracle: str, schedule: dict) -> dict:
    """Execute one oracle check; returns the report as a dict with the
    worker-measured wall duration (the fuzzer's cost-model input)."""
    import time

    from .verify import ORACLES, schedule_from_dict

    t0 = time.perf_counter()
    report = ORACLES[oracle].check_schedule(schedule_from_dict(schedule))
    return {"report": report.as_dict(),
            "duration": time.perf_counter() - t0}


def _pool_entry(payload_kind: str, a, b, guard, cache_dir, sim_backend):
    """Top-level pool-worker entry point (picklable by name for spawn)."""
    if payload_kind == "check":
        return _run_check_job(a, b)
    from . import engine as engine_mod

    return engine_mod._execute_job(a, b, guard, cache_dir, sim_backend)


# --------------------------------------------------------------------- #
# inline
# --------------------------------------------------------------------- #

class InlineDispatch(DispatchBackend):
    """Run every job in the submitting process, in submission order."""

    name = "inline"

    def __init__(self, config: DispatchConfig):
        super().__init__(config)
        self._queue: "list[tuple[DispatchJob, dict]]" = []

    def _enqueue(self, job: DispatchJob, payload: dict) -> None:
        self._queue.append((job, payload))

    def _pump(self) -> DispatchJob:
        if not self._queue:
            raise DispatchError("no outstanding dispatch jobs")
        job, payload = self._queue.pop(0)
        if payload["kind"] == "check":
            job._resolve(_run_check_job(payload["oracle"], payload["schedule"]))
        else:
            result, elapsed, served = _run_sim_job(
                payload["spec"], payload["deps"], self.config
            )
            job._resolve((result, elapsed, served, False))
        return job


# --------------------------------------------------------------------- #
# local-pool
# --------------------------------------------------------------------- #

class LocalPoolDispatch(DispatchBackend):
    """The seed mechanics: spawn-safe process pool per wave.

    Jobs are buffered at submission; the first collection decides the
    mechanism — in-process for ``jobs=1`` or a single-job wave (exactly
    the engine's historical fast path), else a spawn-context
    ``ProcessPoolExecutor`` sized ``min(jobs, wave)`` whose futures are
    collected ``FIRST_COMPLETED``-first.  Spawn, not fork: simulations
    build deep object graphs and numpy state; forking a warm parent is
    where the subtle bugs live.
    """

    name = "local-pool"

    def __init__(self, config: DispatchConfig):
        super().__init__(config)
        self._queue: "list[tuple[DispatchJob, dict]]" = []
        self._pool = None
        self._futures: "dict" = {}

    def _enqueue(self, job: DispatchJob, payload: dict) -> None:
        if self._futures:
            raise DispatchError(
                "local-pool dispatch cannot accept submissions while a "
                "wave is collecting; drain the wave first"
            )
        self._queue.append((job, payload))

    def _resolve_inline(self, job: DispatchJob, payload: dict) -> DispatchJob:
        if payload["kind"] == "check":
            job._resolve(_run_check_job(payload["oracle"], payload["schedule"]))
        else:
            result, elapsed, served = _run_sim_job(
                payload["spec"], payload["deps"], self.config
            )
            job._resolve((result, elapsed, served, False))
        return job

    def _launch(self) -> None:
        ctx = get_context("spawn")
        workers = min(self.config.jobs, len(self._queue))
        self._pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        for job, payload in self._queue:
            if payload["kind"] == "check":
                future = self._pool.submit(
                    _pool_entry, "check", payload["oracle"],
                    payload["schedule"], None, None, None,
                )
            else:
                future = self._pool.submit(
                    _pool_entry, "sim", payload["spec"], payload["deps"],
                    self.config.guard, self.config.cache_dir,
                    self.config.sim_backend,
                )
            self._futures[future] = job
        self._queue.clear()

    def _pump(self) -> DispatchJob:
        if not self._futures:
            if not self._queue:
                raise DispatchError("no outstanding dispatch jobs")
            if self.config.jobs == 1 or len(self._queue) == 1:
                job, payload = self._queue.pop(0)
                return self._resolve_inline(job, payload)
            self._launch()
        done, _ = wait(self._futures, return_when=FIRST_COMPLETED)
        future = next(iter(done))
        job = self._futures.pop(future)
        value = future.result()
        if job.kind == "check":
            job._resolve(value)
        else:
            result, elapsed, served = value
            job._resolve((result, elapsed, served, False))
        if not self._futures and self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        return job

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def create_dispatch(name: str, config: DispatchConfig) -> DispatchBackend:
    """Instantiate a concrete backend for a *resolved* dispatch name."""
    if name == "inline":
        return InlineDispatch(config)
    if name == "local-pool":
        return LocalPoolDispatch(config)
    if name == "service":
        from .service import ServiceDispatch

        return ServiceDispatch(config)
    raise ValueError(f"unknown dispatch backend {name!r}")
