"""Experiment harness: runners and per-figure experiment drivers."""

from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    fig5a,
    fig5b,
    fig6,
    fig7,
    fig8,
    fig9,
    table1,
)
from .runner import RunResult, launch_run, restart_run

__all__ = [
    "RunResult",
    "launch_run",
    "restart_run",
    "ExperimentResult",
    "EXPERIMENTS",
    "table1",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
]
