"""Experiment harness: runners, declarative specs, the batch engine,
the on-disk result cache, and per-figure experiment drivers."""

from .cache import ResultCache, default_cache_dir
from .engine import DEFAULT_MAX_EVENTS, EngineStats, ExperimentEngine
from .experiments import (
    EXPERIMENTS,
    PLANNERS,
    ExperimentResult,
    FigurePlan,
    fig5a,
    fig5b,
    fig6,
    fig7,
    fig8,
    fig9,
    run_plans,
    table1,
)
from .runner import RunResult, launch_run, restart_run
from .spec import (
    SCHEMA_VERSION,
    RunSpec,
    SpecError,
    execute,
    run_result_from_dict,
    run_result_to_dict,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
)

__all__ = [
    "RunResult",
    "launch_run",
    "restart_run",
    "RunSpec",
    "SpecError",
    "execute",
    "spec_hash",
    "spec_to_dict",
    "spec_from_dict",
    "run_result_to_dict",
    "run_result_from_dict",
    "SCHEMA_VERSION",
    "ExperimentEngine",
    "EngineStats",
    "DEFAULT_MAX_EVENTS",
    "ResultCache",
    "default_cache_dir",
    "ExperimentResult",
    "FigurePlan",
    "run_plans",
    "EXPERIMENTS",
    "PLANNERS",
    "table1",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
]
