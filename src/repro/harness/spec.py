"""Declarative run specifications: one immutable value per simulated job.

A :class:`RunSpec` fully describes one simulated MPI job — application,
process layout, protocol, seed, checkpoint schedule, and model
parameters — as a frozen, hashable dataclass.  Because the spec is a
*value* (not a closure over factories, as ``launch_run`` calls used to
be), the experiment engine can deduplicate identical jobs across
figures, key a persistent on-disk cache by content hash, and ship jobs
to worker processes.

Dependent phases are part of the spec language:

* ``checkpoint_fractions`` — request checkpoints at fractions of the
  job's own uncheckpointed ("probe") runtime.  The probe is itself a
  plain spec (:meth:`RunSpec.probe_spec`), so it participates in
  dedup/caching like any other job (Figure 9 used to run it inline).
* ``checkpoint_completion_fracs`` — request checkpoints at fractions of
  the probe's *earliest rank finish time* (fault injection: fractions
  near or past 1.0 race rank completion, the scenario class the
  coordinator must checkpoint *through*; see ``repro.harness.verify``).
* ``restart_of`` — restart from the Nth committed checkpoint of another
  spec's run (a fresh lower half adopting the images, as in MANA).

:func:`execute` resolves these chains and runs the simulation;
:func:`spec_hash` provides the stable content hash; and the
``*_to_dict`` / ``*_from_dict`` pairs round-trip :class:`RunSpec` and
:class:`RunResult` (including committed :class:`CheckpointImage`
metadata) through JSON so results can cross process and disk
boundaries.  Image *payloads* (application state, call logs, drained
messages) are deliberately dropped in the JSON form — they can hold
hundreds of MB of numpy state; a result deserialized from JSON reports
every measurement but cannot seed a restart, which :func:`execute`
detects and handles by loading the parent's committed images from the
cache's image tier (the ``images`` loader argument) or, failing that,
by re-simulating the parent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, MutableMapping

import numpy as np

from ..apps import make_app_factory, resolve_app_name
from ..core import UnsupportedOperationError
from ..des import ProcessFailed
from ..mana import CheckpointImage, CheckpointRecord
from ..netmodel import (
    CollectiveTuning,
    ComputeModel,
    LinkParams,
    ModelParams,
    OverheadCosts,
    StorageModel,
)
from ..scenarios import ScenarioError, canonical_scenario
from ..util.hashing import stable_json_hash
from .runner import RunResult, launch_run

__all__ = [
    "SCHEMA_VERSION",
    "SPEC_POINT_FIELDS",
    "RunSpec",
    "SpecError",
    "execute",
    "spec_hash",
    "spec_to_dict",
    "spec_from_dict",
    "run_result_to_dict",
    "run_result_from_dict",
    "job_to_dict",
    "job_from_dict",
    "checkpoint_record_to_dict",
    "checkpoint_record_from_dict",
    "image_is_stripped",
    "record_has_full_images",
    "result_has_full_images",
]

#: Bump whenever the meaning of a spec field or the serialized result
#: layout changes; the cache segregates entries by this version.
SCHEMA_VERSION = 2

#: Point keys :meth:`RunSpec.from_point` routes to spec fields; every
#: other key becomes an app kwarg.  ``restart`` (bool) is the sweep
#: layer's chain marker: the point's checkpoint schedule moves to a
#: parent spec and the built spec restarts from it.
SPEC_POINT_FIELDS = (
    "app",
    "nprocs",
    "protocol",
    "ppn",
    "seed",
    "checkpoint_at",
    "checkpoint_fractions",
    "checkpoint_completion_fracs",
    "storage",
    "params",
    "max_events",
    "restart",
    "restart_ckpt",
    "crash_fracs",
    "scenario",
)

#: The schedule-shaped point fields (scalars promoted to 1-tuples).
_SCHEDULE_FIELDS = (
    "checkpoint_at",
    "checkpoint_fractions",
    "checkpoint_completion_fracs",
)

#: Sentinel key marking a deserialized image whose payload was dropped.
_STRIPPED_KEY = "__payload_stripped__"

_SCALAR_TYPES = (bool, int, float, str, type(None))


class SpecError(ValueError):
    """Malformed or unexecutable run specification."""


def _normalize_kwargs(app_kwargs: Any) -> tuple[tuple[str, Any], ...]:
    """Canonical (sorted, scalar-only) form of an app's kwargs."""
    if app_kwargs is None:
        return ()
    if isinstance(app_kwargs, Mapping):
        items = app_kwargs.items()
    else:
        items = tuple(app_kwargs)
    out = []
    for key, value in sorted(items):
        if not isinstance(key, str):
            raise SpecError(f"app kwarg name must be str, got {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise SpecError(
                f"app kwarg {key}={value!r} is not a scalar; specs must be "
                "fully declarative (configure apps by value, not object)"
            )
        out.append((key, value))
    return tuple(out)


@dataclass(frozen=True)
class RunSpec:
    """Immutable description of one simulated job.

    Build via :meth:`RunSpec.create`, which normalizes ``app_kwargs``
    into the canonical sorted-tuple form that makes equal specs compare
    (and hash) equal regardless of construction order.
    """

    app: str
    nprocs: int
    app_kwargs: tuple[tuple[str, Any], ...] = ()
    protocol: str = "native"
    ppn: int | None = None
    seed: int = 0
    #: Absolute virtual times of coordinator checkpoint requests.
    checkpoint_at: tuple[float, ...] = ()
    #: Checkpoint requests at fractions of the probe run's runtime.
    checkpoint_fractions: tuple[float, ...] = ()
    #: Checkpoint requests at fractions of the probe run's *earliest
    #: rank completion* — the fault-injection knob for the
    #: request-races-completion scenario class.  Fractions near (or
    #: past) 1.0 land requests in the window where some ranks have
    #: finished while others are mid-program; the coordinator must
    #: checkpoint through the completed ranks instead of aborting.
    checkpoint_completion_fracs: tuple[float, ...] = ()
    #: Crash-fault injection: ``(rank, frac)`` pairs hard-killing
    #: ``rank`` at ``frac`` of the probe run's runtime.  A crashed rank
    #: is *not* a finished rank: rounds it participates in abort, later
    #: requests abort immediately, and the coordinator tears the job
    #: down.  On a ``restart_of`` spec the fractions are relative to the
    #: *restart leg's own* crash-free runtime (its probe keeps
    #: ``restart_of``), so a crash can land while survivors rebuild the
    #: lower half, replay comm creation, or drain restored p2p.
    #: Recovery is a further restart from the last committed image —
    #: see :mod:`repro.harness.recovery` for the bounded-retry planner.
    crash_fracs: tuple[tuple[int, float], ...] = ()
    storage: StorageModel | None = None
    params: ModelParams | None = None
    max_events: int | None = None
    #: Dependent phase: restart from a committed checkpoint of this spec.
    restart_of: "RunSpec | None" = None
    #: Index into the parent run's *committed* checkpoint list.
    restart_ckpt: int = 0
    #: Canonical scenario string (:mod:`repro.scenarios`) perturbing the
    #: run — fabric, stragglers, link degradation.  ``None`` is the
    #: unperturbed run and (like the fault-schedule fields) stays out of
    #: the serialized form, so pre-scenario specs keep their hashes.
    scenario: str | None = None

    @classmethod
    def create(
        cls,
        app: str,
        nprocs: int,
        *,
        app_kwargs: Mapping[str, Any] | None = None,
        protocol: str = "native",
        ppn: int | None = None,
        seed: int = 0,
        checkpoint_at: tuple[float, ...] | list[float] = (),
        checkpoint_fractions: tuple[float, ...] | list[float] = (),
        checkpoint_completion_fracs: tuple[float, ...] | list[float] = (),
        crash_fracs: Any = (),
        storage: StorageModel | None = None,
        params: ModelParams | None = None,
        max_events: int | None = None,
        restart_of: "RunSpec | None" = None,
        restart_ckpt: int = 0,
        scenario: Any = None,
    ) -> "RunSpec":
        try:
            scenario = canonical_scenario(scenario)
        except ScenarioError as exc:
            raise SpecError(str(exc)) from None
        spec = cls(
            # Canonicalize aliases ("vasp" -> "minivasp") here, where
            # nprocs/seed are already being normalized: spec equality,
            # dedup, and the cache key must not depend on spelling.
            app=resolve_app_name(app),
            nprocs=int(nprocs),
            app_kwargs=_normalize_kwargs(app_kwargs),
            protocol=protocol,
            ppn=None if ppn is None else int(ppn),
            seed=int(seed),
            checkpoint_at=tuple(float(t) for t in checkpoint_at),
            checkpoint_fractions=tuple(float(f) for f in checkpoint_fractions),
            checkpoint_completion_fracs=tuple(
                float(f) for f in checkpoint_completion_fracs
            ),
            # Canonical sorted-by-rank form so equal fault schedules
            # compare (and hash) equal regardless of construction order.
            crash_fracs=tuple(
                sorted((int(r), float(f)) for r, f in crash_fracs)
            ),
            storage=storage,
            params=params,
            max_events=max_events,
            restart_of=restart_of,
            restart_ckpt=int(restart_ckpt),
            scenario=scenario,
        )
        spec.validate()
        return spec

    @classmethod
    def from_point(cls, point: Mapping[str, Any]) -> "RunSpec":
        """Build a spec from a flat axis-point mapping (the sweep layer).

        Keys in :data:`SPEC_POINT_FIELDS` route to spec fields; every
        other key is an app kwarg (so ``niters``, ``kind``, ``nbytes``…
        are first-class sweep axes).  Scalar ``checkpoint_at`` /
        ``checkpoint_fractions`` values are promoted to one-element
        schedules.  A truthy ``restart`` key moves the point's
        checkpoint schedule onto a parent spec and returns a spec that
        restarts from that parent's ``restart_ckpt``-th commit.
        """
        point = dict(point)
        try:
            app = point.pop("app")
            nprocs = point.pop("nprocs")
        except KeyError as exc:
            raise SpecError(f"sweep point is missing the {exc.args[0]!r} axis") from None
        restart = bool(point.pop("restart", False))
        restart_ckpt = int(point.pop("restart_ckpt", 0))
        fields = {
            name: point.pop(name)
            for name in SPEC_POINT_FIELDS
            if name in point
        }
        for schedule in _SCHEDULE_FIELDS:
            value = fields.get(schedule)
            if isinstance(value, (int, float)):
                fields[schedule] = (float(value),)
            elif value is not None:
                fields[schedule] = tuple(value)
        app_kwargs = point  # whatever is left belongs to the application
        if not restart:
            return cls.create(app, nprocs, app_kwargs=app_kwargs, **fields)
        if not any(fields.get(schedule) for schedule in _SCHEDULE_FIELDS):
            raise SpecError(
                "restart=True needs a checkpoint schedule (checkpoint_at, "
                "checkpoint_fractions, or checkpoint_completion_fracs) for "
                "the parent run to commit"
            )
        # The parent leg keeps the checkpoint schedule (so it commits an
        # image to restart from) but never the crash: a point that arms
        # both restarts *past* a parent commit and injects the crash on
        # the restart leg itself — the crash-during-recovery scenario.
        crash = fields.pop("crash_fracs", None)
        parent = cls.create(app, nprocs, app_kwargs=app_kwargs, **fields)
        for schedule in _SCHEDULE_FIELDS:
            fields.pop(schedule, None)
        if crash is not None:
            fields["crash_fracs"] = crash
        return cls.create(
            app,
            nprocs,
            app_kwargs=app_kwargs,
            restart_of=parent,
            restart_ckpt=restart_ckpt,
            **fields,
        )

    def validate(self) -> None:
        if self.nprocs < 1:
            raise SpecError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.protocol not in ("native", "2pc", "cc"):
            raise SpecError(f"unknown protocol {self.protocol!r}")
        wants_ckpt = bool(
            self.checkpoint_at
            or self.checkpoint_fractions
            or self.checkpoint_completion_fracs
        )
        if wants_ckpt and self.protocol == "native":
            raise SpecError("native runs cannot be checkpointed")
        if self.restart_of is not None:
            if self.checkpoint_fractions or self.checkpoint_completion_fracs:
                raise SpecError(
                    "restart specs cannot also use probe-relative checkpoint "
                    "fractions; schedule further checkpoints with absolute "
                    "checkpoint_at"
                )
            if self.restart_of.protocol != self.protocol:
                raise SpecError(
                    f"restart protocol {self.protocol!r} != parent "
                    f"protocol {self.restart_of.protocol!r}"
                )
            if self.restart_of.nprocs != self.nprocs:
                raise SpecError("restart must use the parent's process count")
        if any(f <= 0 for f in self.checkpoint_fractions):
            raise SpecError("checkpoint fractions must be positive")
        if any(f <= 0 for f in self.checkpoint_completion_fracs):
            raise SpecError("checkpoint completion fractions must be positive")
        if self.crash_fracs:
            ranks = [r for r, _f in self.crash_fracs]
            if len(set(ranks)) != len(ranks):
                raise SpecError("crash_fracs names a rank more than once")
            bad = [r for r in ranks if not 0 <= r < self.nprocs]
            if bad:
                raise SpecError(f"crash_fracs names nonexistent rank(s) {bad}")
            if any(f <= 0 for _r, f in self.crash_fracs):
                raise SpecError("crash fractions must be positive")
        if self.scenario is not None:
            try:
                canonical = canonical_scenario(self.scenario)
            except ScenarioError as exc:
                raise SpecError(str(exc)) from None
            if canonical != self.scenario:
                raise SpecError(
                    f"scenario {self.scenario!r} is not canonical (expected "
                    f"{canonical!r}); build specs via RunSpec.create"
                )

    # -- structure ------------------------------------------------------ #

    def probe_spec(self) -> "RunSpec | None":
        """The uncheckpointed, uncrashed probe this spec's fractions and
        crash times are relative to."""
        if (
            not self.checkpoint_fractions
            and not self.checkpoint_completion_fracs
            and not self.crash_fracs
        ):
            return None
        return replace(
            self,
            checkpoint_at=(),
            checkpoint_fractions=(),
            checkpoint_completion_fracs=(),
            crash_fracs=(),
        )

    def with_scenario(self, scenario: Any) -> "RunSpec":
        """This spec — and its whole restart chain — under ``scenario``.

        A restart leg and its parent must see the same fabric for the
        images to replay faithfully, so the rewrite recurses through
        ``restart_of``.
        """
        try:
            canonical = canonical_scenario(scenario)
        except ScenarioError as exc:
            raise SpecError(str(exc)) from None
        parent = (
            None
            if self.restart_of is None
            else self.restart_of.with_scenario(canonical)
        )
        return replace(self, scenario=canonical, restart_of=parent)

    def parents(self) -> "tuple[RunSpec, ...]":
        """Specs whose results this spec's execution depends on."""
        out = []
        probe = self.probe_spec()
        if probe is not None:
            out.append(probe)
        if self.restart_of is not None:
            out.append(self.restart_of)
        return tuple(out)

    def ancestors(self) -> "tuple[RunSpec, ...]":
        """Transitive dependency closure (no duplicates, parents first)."""
        seen: dict[RunSpec, None] = {}
        stack = list(self.parents())
        while stack:
            spec = stack.pop()
            if spec in seen:
                continue
            seen[spec] = None
            stack.extend(spec.parents())
        return tuple(seen)

    def chain_depth(self) -> int:
        """0 for independent jobs, 1 + max parent depth for chained ones."""
        parents = self.parents()
        if not parents:
            return 0
        return 1 + max(p.chain_depth() for p in parents)

    def app_factory(self):
        """Zero-argument app factory (one instance per rank)."""
        return make_app_factory(self.app, **dict(self.app_kwargs))

    def _own_cost(self) -> float:
        """This spec's cost ignoring any restart parent."""
        niters = 30.0
        for key, value in self.app_kwargs:
            if key == "niters":
                niters = float(value)
                break
        cost = float(self.nprocs) * niters
        n_ckpt = (
            len(self.checkpoint_at)
            + len(self.checkpoint_fractions)
            + len(self.checkpoint_completion_fracs)
        )
        if n_ckpt:
            # Checkpoint phases add drain/commit rounds on top of the
            # app's own traffic.
            cost *= 1.0 + 0.25 * n_ckpt
        return cost

    def cost_hint(self) -> float:
        """Relative execution-cost estimate (``nprocs × niters`` shaped).

        The engine's wave scheduler prefers *recorded* wall times from
        the result cache; this heuristic is the fallback for specs never
        executed before.  Units are arbitrary — only the ordering within
        a wave matters — but :data:`~repro.harness.engine.HEURISTIC_SECONDS_PER_UNIT`
        maps them onto rough seconds so recorded and estimated costs can
        sort together.

        ``restart_of`` chains are folded iteratively, deepest ancestor
        first, and each link's value is memoized on the (immutable)
        instance — wave sorting used to recompute every ancestor's cost
        per call, O(depth²) across a chain, and recursed past Python's
        stack limit on very deep chains.
        """
        memo = self.__dict__.get("_cost_hint")
        if memo is not None:
            return memo
        chain: list[RunSpec] = []
        node: RunSpec | None = self
        while node is not None and "_cost_hint" not in node.__dict__:
            chain.append(node)
            node = node.restart_of
        inherited = 0.0 if node is None else node.__dict__["_cost_hint"]
        for spec in reversed(chain):
            cost = spec._own_cost()
            if spec.restart_of is not None:
                # A restart replays the tail of the parent's run.
                cost = max(cost, 0.5 * inherited)
            object.__setattr__(spec, "_cost_hint", cost)
            inherited = cost
        return inherited

    def label(self) -> str:
        """Short human-readable identity for progress reporting."""
        tag = f"{self.app}/{self.protocol} p={self.nprocs}"
        if self.restart_of is not None:
            tag += " (restart)"
        elif (
            self.checkpoint_fractions
            or self.checkpoint_at
            or self.checkpoint_completion_fracs
        ):
            tag += " (ckpt)"
        if self.crash_fracs:
            tag += " (crash)"
        if self.scenario:
            tag += f" [{self.scenario}]"
        return tag


def spec_hash(spec: RunSpec) -> str:
    """Stable content hash of a spec, identical across processes."""
    payload = spec_to_dict(spec)
    payload["!schema"] = SCHEMA_VERSION
    return stable_json_hash(payload)


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #

def execute(
    spec: RunSpec,
    deps: MutableMapping[RunSpec, RunResult] | None = None,
    *,
    max_events_guard: int | None = None,
    images: "Callable[[RunSpec, int], dict | None] | None" = None,
) -> RunResult:
    """Run one spec (resolving probe/restart chains) and return its result.

    Args:
        spec: the job to run.
        deps: optional already-computed results for this spec's
            ancestors (the engine passes wave-N-1 results here).  A
            parent result lacking full checkpoint images — e.g. one
            deserialized from the JSON cache — is transparently
            re-simulated, since images never cross the JSON boundary.
        max_events_guard: per-job event ceiling applied to specs that do
            not set their own ``max_events`` (runaway-simulation guard;
            it never alters the result of a job that completes).
        images: optional loader ``(parent_spec, committed_index) ->
            image map or None`` backed by the cache's image tier (see
            :meth:`repro.harness.cache.ResultCache.get_images`).  When
            it serves a restart parent's images, the parent is not
            simulated at all — the warm-restart fast path.  Any miss
            falls back to the re-simulation path, so a loader can only
            make execution faster, never change a result.

    A job whose protocol cannot wrap the application (the paper's NA
    cells, e.g. 2PC with non-blocking collectives) returns a
    :class:`RunResult` with ``na_reason`` set rather than raising, so
    batch execution records *why* the cell is NA instead of dying.
    """
    deps = deps if deps is not None else {}
    return _execute(spec, deps, guard=max_events_guard, images=images)


def _execute(
    spec: RunSpec,
    deps: MutableMapping[RunSpec, RunResult],
    *,
    guard: int | None,
    images: "Callable[[RunSpec, int], dict | None] | None" = None,
) -> RunResult:
    checkpoint_at = spec.checkpoint_at
    crash_at: dict[int, float] | None = None
    probe = spec.probe_spec()
    if probe is not None:
        probe_result = _resolve_parent(
            probe,
            deps,
            guard=guard,
            images=images,
            need_images=False,
            # Completion fractions anchor on per-rank finish instants; a
            # probe result cached before that field existed is unusable
            # and gets re-simulated (the fresh result then overwrites the
            # stale cache entry), so the derived schedule is a function
            # of the spec alone, never of cache vintage.
            need_finish_times=bool(spec.checkpoint_completion_fracs),
        )
        if probe_result.na_reason:
            return _na_result(spec, probe_result.na_reason)
        checkpoint_at = checkpoint_at + tuple(
            f * probe_result.runtime for f in spec.checkpoint_fractions
        )
        if spec.checkpoint_completion_fracs:
            first_finish = min(probe_result.rank_finish_times)
            checkpoint_at = checkpoint_at + tuple(
                f * first_finish for f in spec.checkpoint_completion_fracs
            )
        if spec.crash_fracs:
            crash_at = {
                rank: f * probe_result.runtime for rank, f in spec.crash_fracs
            }

    restore_images = None
    if spec.restart_of is not None:
        # Warm-restart fast path: a known-NA parent still propagates NA,
        # but a parent whose result is merely image-stripped (or not
        # resolved at all) can be served straight from the image tier —
        # the committed images are the only thing a restart needs from
        # its parent.
        known = deps.get(spec.restart_of)
        if known is not None and known.na_reason:
            return _na_result(spec, known.na_reason)
        if images is not None and (
            known is None or not result_has_full_images(known)
        ):
            restore_images = images(spec.restart_of, spec.restart_ckpt)
        if restore_images is None:
            parent = _resolve_parent(
                spec.restart_of, deps, guard=guard, images=images,
                need_images=True,
            )
            if parent.na_reason:
                return _na_result(spec, parent.na_reason)
            committed = [r for r in parent.checkpoints if r.committed]
            if not committed:
                raise SpecError(
                    f"restart parent {spec.restart_of.label()} committed no "
                    "checkpoints — nothing to restart from"
                )
            try:
                restore_images = committed[spec.restart_ckpt].images
            except IndexError:
                raise SpecError(
                    f"restart_ckpt={spec.restart_ckpt} out of range: parent "
                    f"committed {len(committed)} checkpoint(s)"
                ) from None

    max_events = spec.max_events if spec.max_events is not None else guard
    try:
        result = launch_run(
            spec.app_factory(),
            spec.nprocs,
            protocol=spec.protocol,
            ppn=spec.ppn,
            params=spec.params,
            seed=spec.seed,
            checkpoint_at=checkpoint_at,
            storage=spec.storage,
            restore_images=restore_images,
            max_events=max_events,
            crash_at=crash_at,
            scenario=spec.scenario,
        )
    except ProcessFailed as exc:
        if isinstance(exc.original, UnsupportedOperationError):
            return _na_result(spec, str(exc.original))
        raise
    # Canonicalize per-rank payloads (numpy scalars -> python, tuples ->
    # lists) so a fresh result compares equal to one that crossed the
    # pickle/JSON boundary.
    result.per_rank = _canonical_value(result.per_rank)
    return result


def _resolve_parent(
    parent: RunSpec,
    deps: MutableMapping[RunSpec, RunResult],
    *,
    guard: int | None,
    images: "Callable[[RunSpec, int], dict | None] | None",
    need_images: bool,
    need_finish_times: bool = False,
) -> RunResult:
    known = deps.get(parent)
    if known is not None and not known.na_reason:
        if need_images and not result_has_full_images(known):
            known = None
        elif need_finish_times and not known.rank_finish_times:
            known = None
    if known is not None:
        return known
    fresh = _execute(parent, deps, guard=guard, images=images)
    deps[parent] = fresh
    return fresh


def _na_result(spec: RunSpec, reason: str) -> RunResult:
    ppn = spec.ppn if spec.ppn is not None else min(spec.nprocs, 128)
    return RunResult(
        app=spec.app,
        protocol=spec.protocol,
        nprocs=spec.nprocs,
        nnodes=-(-spec.nprocs // ppn),
        runtime=0.0,
        per_rank=[],
        coll_calls=0,
        p2p_calls=0,
        na_reason=reason or "unsupported",
    )


# --------------------------------------------------------------------- #
# JSON (de)serialization
# --------------------------------------------------------------------- #

def _canonical_value(value: Any) -> Any:
    """Recursively reduce a value to JSON-canonical python types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, _SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical_value(v) for k, v in value.items()}
    return repr(value)


def spec_to_dict(spec: RunSpec) -> dict:
    """JSON-representable form of a spec (recursive over restart chains)."""
    out = {
        "app": spec.app,
        "nprocs": spec.nprocs,
        "app_kwargs": [[k, v] for k, v in spec.app_kwargs],
        "protocol": spec.protocol,
        "ppn": spec.ppn,
        "seed": spec.seed,
        "checkpoint_at": list(spec.checkpoint_at),
        "checkpoint_fractions": list(spec.checkpoint_fractions),
        "storage": None if spec.storage is None else dataclasses.asdict(spec.storage),
        "params": None if spec.params is None else dataclasses.asdict(spec.params),
        "max_events": spec.max_events,
        "restart_of": None if spec.restart_of is None else spec_to_dict(spec.restart_of),
        "restart_ckpt": spec.restart_ckpt,
    }
    # Fault-schedule fields enter the content hash only when set, so
    # every pre-existing spec keeps its hash (and its cache entry).
    if spec.checkpoint_completion_fracs:
        out["checkpoint_completion_fracs"] = list(spec.checkpoint_completion_fracs)
    if spec.crash_fracs:
        out["crash_fracs"] = [[r, f] for r, f in spec.crash_fracs]
    if spec.scenario:
        out["scenario"] = spec.scenario
    return out


def spec_from_dict(data: Mapping[str, Any]) -> RunSpec:
    params = data.get("params")
    if params is not None:
        params = ModelParams(
            intra=LinkParams(**params["intra"]),
            inter=LinkParams(**params["inter"]),
            overheads=OverheadCosts(**params["overheads"]),
            tuning=CollectiveTuning(**params["tuning"]),
            compute=ComputeModel(**params["compute"]),
        )
    storage = data.get("storage")
    restart_of = data.get("restart_of")
    return RunSpec.create(
        data["app"],
        data["nprocs"],
        app_kwargs={k: v for k, v in data.get("app_kwargs", [])},
        protocol=data.get("protocol", "native"),
        ppn=data.get("ppn"),
        seed=data.get("seed", 0),
        checkpoint_at=tuple(data.get("checkpoint_at", ())),
        checkpoint_fractions=tuple(data.get("checkpoint_fractions", ())),
        checkpoint_completion_fracs=tuple(
            data.get("checkpoint_completion_fracs", ())
        ),
        crash_fracs=tuple(
            (int(r), float(f)) for r, f in data.get("crash_fracs", ())
        ),
        storage=None if storage is None else StorageModel(**storage),
        params=params,
        max_events=data.get("max_events"),
        restart_of=None if restart_of is None else spec_from_dict(restart_of),
        restart_ckpt=data.get("restart_ckpt", 0),
        scenario=data.get("scenario"),
    )


#: CheckpointImage fields preserved verbatim in the JSON form; the
#: payload fields (app state, logs, drained messages, request tables)
#: are replaced by their element counts.
_IMAGE_SCALARS = (
    "rank",
    "nprocs",
    "protocol",
    "ckpt_id",
    "call_index",
    "boundary_index",
    "remaining_compute",
    "declared_bytes",
)
_IMAGE_DROPPED = ("app_state", "seq_table", "creation_log", "call_log", "drained")


def _image_to_dict(image: CheckpointImage) -> dict:
    out = {name: getattr(image, name) for name in _IMAGE_SCALARS}
    # ``final_result`` travels with the payload (it can be arbitrary app
    # data): a stripped image cannot seed a restart anyway, so dropping
    # it costs nothing the JSON form could have used.
    out["finished"] = image.finished
    out["ggid_peers"] = {
        str(g): list(peers) for g, peers in image.ggid_peers.items()
    }
    out["pending_recvs"] = list(image.pending_recvs)
    out["stats"] = _canonical_value(image.stats)
    if image_is_stripped(image):
        # Re-serializing a deserialized image must be idempotent: report
        # the original payload's element counts (preserved in the
        # stripped marker), not the marker's own shape.
        out["dropped"] = dict(image.app_state[_STRIPPED_KEY])
    else:
        out["dropped"] = {
            name: len(getattr(image, name)) for name in _IMAGE_DROPPED
        }
    return out


def _image_from_dict(data: Mapping[str, Any]) -> CheckpointImage:
    image = CheckpointImage(
        **{name: data[name] for name in _IMAGE_SCALARS},
        finished=bool(data.get("finished", False)),
        app_state={_STRIPPED_KEY: dict(data.get("dropped", {}))},
        ggid_peers={int(g): list(p) for g, p in data.get("ggid_peers", {}).items()},
        pending_recvs=list(data.get("pending_recvs", ())),
        stats=dict(data.get("stats", {})),
    )
    return image


def image_is_stripped(image: CheckpointImage) -> bool:
    """True iff this image came back from JSON without its payload."""
    return _STRIPPED_KEY in image.app_state


def record_has_full_images(record: CheckpointRecord) -> bool:
    """True iff the record's images can actually seed a restart."""
    return bool(record.images) and not any(
        image_is_stripped(im) for im in record.images.values()
    )


def result_has_full_images(result: RunResult) -> bool:
    committed = [r for r in result.checkpoints if r.committed]
    return bool(committed) and all(record_has_full_images(r) for r in committed)


def checkpoint_record_to_dict(record: CheckpointRecord) -> dict:
    return {
        "ckpt_id": record.ckpt_id,
        "protocol": record.protocol,
        "t_request": record.t_request,
        "t_targets": record.t_targets,
        "t_quiesced": record.t_quiesced,
        "t_drained": record.t_drained,
        "t_written": record.t_written,
        "t_resumed": record.t_resumed,
        "aborted": record.aborted,
        "abort_reason": record.abort_reason,
        "total_image_bytes": record.total_image_bytes,
        "images": {str(r): _image_to_dict(im) for r, im in record.images.items()},
        "seq_reports": {
            str(rank): {str(g): s for g, s in table.items()}
            for rank, table in record.seq_reports.items()
        },
        "initial_targets": {str(g): t for g, t in record.initial_targets.items()},
    }


def checkpoint_record_from_dict(data: Mapping[str, Any]) -> CheckpointRecord:
    return CheckpointRecord(
        ckpt_id=data["ckpt_id"],
        protocol=data["protocol"],
        t_request=data["t_request"],
        t_targets=data.get("t_targets"),
        t_quiesced=data.get("t_quiesced"),
        t_drained=data.get("t_drained"),
        t_written=data.get("t_written"),
        t_resumed=data.get("t_resumed"),
        aborted=data.get("aborted", False),
        abort_reason=data.get("abort_reason", ""),
        total_image_bytes=data.get("total_image_bytes", 0),
        images={
            int(r): _image_from_dict(im)
            for r, im in data.get("images", {}).items()
        },
        seq_reports={
            int(rank): {int(g): s for g, s in table.items()}
            for rank, table in data.get("seq_reports", {}).items()
        },
        initial_targets={
            int(g): t for g, t in data.get("initial_targets", {}).items()
        },
    )


def run_result_to_dict(result: RunResult) -> dict:
    """JSON-representable form of a result (image payloads dropped)."""
    return {
        "schema": SCHEMA_VERSION,
        "app": result.app,
        "protocol": result.protocol,
        "nprocs": result.nprocs,
        "nnodes": result.nnodes,
        "runtime": result.runtime,
        "per_rank": _canonical_value(result.per_rank),
        "coll_calls": result.coll_calls,
        "p2p_calls": result.p2p_calls,
        "checkpoints": [checkpoint_record_to_dict(r) for r in result.checkpoints],
        "restart_read_time": result.restart_read_time,
        "restart_ready_time": result.restart_ready_time,
        "rank_finish_times": list(result.rank_finish_times),
        "sim_events": result.sim_events,
        "na_reason": result.na_reason,
        "crashed_ranks": list(result.crashed_ranks),
        "drain_restored": list(result.drain_restored),
        "drain_buffered": list(result.drain_buffered),
        "drain_consumed": list(result.drain_consumed),
        "drain_leftover": list(result.drain_leftover),
    }


def run_result_from_dict(data: Mapping[str, Any]) -> RunResult:
    schema = data.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"serialized result has schema {schema}, expected {SCHEMA_VERSION}"
        )
    return RunResult(
        app=data["app"],
        protocol=data["protocol"],
        nprocs=data["nprocs"],
        nnodes=data["nnodes"],
        runtime=data["runtime"],
        per_rank=list(data.get("per_rank", ())),
        coll_calls=data.get("coll_calls", 0),
        p2p_calls=data.get("p2p_calls", 0),
        checkpoints=[
            checkpoint_record_from_dict(r) for r in data.get("checkpoints", ())
        ],
        restart_read_time=data.get("restart_read_time", 0.0),
        restart_ready_time=data.get("restart_ready_time", 0.0),
        rank_finish_times=list(data.get("rank_finish_times", ())),
        sim_events=data.get("sim_events", 0),
        na_reason=data.get("na_reason", ""),
        crashed_ranks=list(data.get("crashed_ranks", ())),
        drain_restored=list(data.get("drain_restored", ())),
        drain_buffered=list(data.get("drain_buffered", ())),
        drain_consumed=list(data.get("drain_consumed", ())),
        drain_leftover=list(data.get("drain_leftover", ())),
    )


def job_to_dict(
    spec: RunSpec,
    deps: Mapping[RunSpec, RunResult] | None = None,
    *,
    guard: int | None = None,
    sim_backend: "str | None" = None,
) -> dict:
    """JSON-representable form of one dispatchable simulation job.

    This is the experiment service's wire format: the spec, the
    already-resolved ancestor results :func:`execute` needs, the
    ``max_events`` guard, and the *resolved* kernel execution backend —
    everything a worker on the far side of a socket needs to reproduce
    the submitting engine's in-process execution byte-for-byte.  Deps
    are serialized via :func:`run_result_to_dict`, so image payloads are
    dropped exactly as they are in the result cache; workers recover
    them from the shared image tier or by parent re-simulation, the
    same degradation path a warm cache already exercises.
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": "sim",
        "spec": spec_to_dict(spec),
        "deps": [
            {"spec": spec_to_dict(dep), "result": run_result_to_dict(res)}
            for dep, res in (deps or {}).items()
        ],
        "guard": guard,
        "sim_backend": sim_backend,
    }


def job_from_dict(
    data: Mapping[str, Any],
) -> "tuple[RunSpec, dict[RunSpec, RunResult], int | None, str | None]":
    """Inverse of :func:`job_to_dict`; returns
    ``(spec, deps, guard, sim_backend)``."""
    schema = data.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"serialized job has schema {schema}, expected {SCHEMA_VERSION}"
        )
    if data.get("kind", "sim") != "sim":
        raise ValueError(f"not a simulation job: kind={data.get('kind')!r}")
    deps = {
        spec_from_dict(entry["spec"]): run_result_from_dict(entry["result"])
        for entry in data.get("deps", ())
    }
    return (
        spec_from_dict(data["spec"]),
        deps,
        data.get("guard"),
        data.get("sim_backend"),
    )
