"""Long-lived experiment service: job queue, workers, persistent index.

The third dispatch backend (:mod:`repro.harness.dispatch`) made real: a
small control plane that turns the engine's process+JSON worker boundary
into a network boundary, the architecture the paper's evaluation (and
the MANA/DMTCP proxy designs it builds on) actually runs — a fleet of
isolated executors coordinated through a thin submission layer with
persistent artifacts.

Three roles, one protocol (line-delimited JSON over TCP; every message
is a single ``\\n``-terminated JSON object):

* **server** (``repro-mpi serve``, :class:`ExperimentServer`) — owns the
  job queue and the persistent job index.  Jobs are keyed by
  :func:`~repro.harness.spec.spec_hash` (oracle checks by a content
  hash over oracle + schedule), so resubmission is idempotent: a job
  already queued, running, or done is never double-executed, and a
  simulation whose result is already in the shared
  :class:`~repro.harness.cache.ResultCache` is answered from the store
  without touching the queue.
* **workers** (``repro-mpi worker --connect HOST:PORT``,
  :func:`run_worker`) — pull-model executors.  A worker long-polls
  ``fetch``, executes the job exactly as an in-process engine would
  (same :func:`~repro.harness.engine._execute_job` body, same resolved
  kernel backend), writes the result — *including full checkpoint
  images* — into the shared cache, and reports the JSON result back.
  A worker that dies mid-job takes nothing with it: the server requeues
  the orphaned job the moment the connection drops — and when the
  server runs with a job lease (``--lease``), a *hung-but-connected*
  worker loses its job too once its heartbeats stop.
* **clients** (``--dispatch service`` on any engine-backed command) —
  submit jobs and block on ``wait``.  Results cross the wire in cache
  JSON form (image payloads stripped); anything needing images recovers
  them from the shared image tier, the same degradation path a warm
  cache already exercises, which is why service results are
  byte-identical to in-process ones.

Protocol sketch (client)::

    -> {"type": "hello", "role": "client", "protocol": 1}
    <- {"type": "welcome", "protocol": 1}
    -> {"type": "submit", "key": K, "job": {...}}
    <- {"type": "accepted", "key": K, "state": "queued"}
    -> {"type": "wait", "keys": [K, ...]}
    <- {"type": "result", "key": K, "value": {...}}

and (worker)::

    -> {"type": "fetch"}
    <- {"type": "job", "key": K, "job": {...}, "cache_dir": "..."} | {"type": "idle"}
    -> {"type": "done", "key": K, "value": {...}}
    <- {"type": "ack"}

The persistent index (``<index-dir>/<key>.json``, atomic writes) records
every job's lifecycle; queued and running jobs keep their payload, so a
restarted server resumes interrupted work instead of losing it.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import tempfile
import threading
import time
from collections import deque
from pathlib import Path

from ..util.hashing import stable_json_hash
from .cache import ResultCache
from .dispatch import (
    DispatchBackend,
    DispatchConfig,
    DispatchError,
    DispatchJob,
    _run_check_job,
)
from .spec import (
    job_from_dict,
    job_to_dict,
    run_result_from_dict,
    run_result_to_dict,
    spec_from_dict,
    spec_hash,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "ExperimentServer",
    "ServiceDispatch",
    "check_job_key",
    "run_worker",
]

PROTOCOL_VERSION = 1
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7463

#: How long a worker ``fetch`` parks server-side before an ``idle``
#: heartbeat tells it to re-poll.  Short enough that shutdown and
#: requeue propagate promptly; long enough that idle workers cost
#: nothing.
FETCH_PARK_SECONDS = 2.0

#: Cap on the worker's exponential connect-retry backoff (seconds).
CONNECT_BACKOFF_CAP = 15.0


def _send(sock: socket.socket, obj: dict) -> None:
    sock.sendall(json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n")


def _recv(rfile) -> "dict | None":
    line = rfile.readline()
    if not line:
        return None
    return json.loads(line)


def check_job_key(oracle: str, schedule: dict) -> str:
    """Content key for one oracle-check job (dedupes like a sim job)."""
    return "check-" + stable_json_hash({"oracle": oracle, "schedule": schedule})


class _Job:
    __slots__ = ("key", "payload", "state", "value", "worker", "submitted",
                 "completed", "leased")

    def __init__(self, key: str, payload: "dict | None"):
        self.key = key
        self.payload = payload
        self.state = "queued"
        self.value: "dict | None" = None
        self.worker: "str | None" = None
        self.submitted = time.time()
        self.completed: "float | None" = None
        #: Monotonic time of the last lease renewal (assignment or
        #: worker heartbeat); None while not running.
        self.leased: "float | None" = None


class ExperimentServer:
    """The control plane: queue, index, and the shared artifact store.

    Args:
        host/port: listen address (``port=0`` picks a free port —
            :meth:`start` returns the bound address).
        cache_dir: root of the shared :class:`ResultCache`.  The server
            consults it before queueing simulations and forwards it to
            workers as their artifact store; ``None`` runs store-less.
        index_dir: persistent job index location; defaults to
            ``<cache_dir>/service-index`` when a cache is configured,
            else in-memory only.
        lease: per-job lease in seconds.  A running job whose worker
            has neither finished nor heartbeat within the lease is
            requeued, so a *hung-but-connected* worker cannot strand a
            job the way a vanished one already can't.  The lease is
            advertised in the handshake; :func:`run_worker` heartbeats
            at a third of it.  ``None`` disables lease reaping
            (connection drop remains the only requeue trigger).
        progress: emit one lifecycle line per job transition on stderr.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = 0,
        *,
        cache_dir: "str | os.PathLike | None" = None,
        index_dir: "str | os.PathLike | None" = None,
        lease: "float | None" = None,
        progress: bool = False,
    ):
        if lease is not None and lease <= 0:
            raise ValueError(f"lease must be positive, got {lease}")
        self.lease = lease
        self.host = host
        self.port = port
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self._cache = None if cache_dir is None else ResultCache(cache_dir)
        if index_dir is None and self.cache_dir is not None:
            index_dir = self.cache_dir / "service-index"
        self.index_dir = None if index_dir is None else Path(index_dir)
        self.progress = progress

        self._cond = threading.Condition()
        self._jobs: "dict[str, _Job]" = {}
        self._queue: "deque[str]" = deque()
        self._shutdown = False
        self._listener: "socket.socket | None" = None
        self._accept_thread: "threading.Thread | None" = None
        self._conns: "set[socket.socket]" = set()
        self._next_conn = 0
        self._load_index()

    # -- lifecycle ------------------------------------------------------ #

    def start(self) -> tuple[str, int]:
        """Bind, accept in a background thread, return ``(host, port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        if self.lease is not None:
            threading.Thread(
                target=self._lease_loop, name="repro-serve-lease", daemon=True
            ).start()
        self._log(f"serving on {self.host}:{self.port}")
        return self.host, self.port

    def serve_forever(self) -> None:
        """:meth:`start` (if needed) and block until :meth:`shutdown`."""
        if self._listener is None:
            self.start()
        try:
            while True:
                with self._cond:
                    if self._shutdown:
                        return
                    self._cond.wait(timeout=1.0)
        except KeyboardInterrupt:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop accepting, wake every parked handler, close connections."""
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            self._cond.notify_all()
            conns = list(self._conns)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._log("shut down")

    def stats(self) -> dict:
        with self._cond:
            states: "dict[str, int]" = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "jobs": len(self._jobs),
                "queued": states.get("queued", 0),
                "running": states.get("running", 0),
                "done": states.get("done", 0),
            }

    # -- connection handling -------------------------------------------- #

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by shutdown()
            with self._cond:
                if self._shutdown:
                    conn.close()
                    return
                self._next_conn += 1
                conn_id = f"conn-{self._next_conn}"
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_conn,
                args=(conn, conn_id),
                name=f"repro-serve-{conn_id}",
                daemon=True,
            ).start()

    def _serve_conn(self, conn: socket.socket, conn_id: str) -> None:
        rfile = conn.makefile("rb")
        try:
            hello = _recv(rfile)
            if not hello or hello.get("type") != "hello":
                _send(conn, {"type": "error", "message": "expected hello"})
                return
            if hello.get("protocol") != PROTOCOL_VERSION:
                _send(conn, {
                    "type": "error",
                    "message": f"protocol {hello.get('protocol')!r} "
                               f"unsupported (server speaks {PROTOCOL_VERSION})",
                })
                return
            welcome: dict = {"type": "welcome", "protocol": PROTOCOL_VERSION}
            if self.lease is not None:
                welcome["lease"] = self.lease
            _send(conn, welcome)
            while True:
                msg = _recv(rfile)
                if msg is None or msg.get("type") == "bye":
                    return
                reply = self._handle(msg, conn_id)
                if reply is not None:
                    _send(conn, reply)
        except (OSError, ValueError):
            pass  # connection dropped mid-message; requeue below
        finally:
            rfile.close()
            try:
                conn.close()
            except OSError:
                pass
            with self._cond:
                self._conns.discard(conn)
            self._reap_worker(conn_id)

    def _handle(self, msg: dict, conn_id: str) -> "dict | None":
        kind = msg.get("type")
        if kind == "submit":
            return self._handle_submit(msg)
        if kind == "wait":
            return self._handle_wait(msg)
        if kind == "fetch":
            return self._handle_fetch(conn_id)
        if kind == "done":
            return self._handle_done(msg, conn_id)
        if kind == "heartbeat":
            self._handle_heartbeat(conn_id)
            return None  # fire-and-forget: heartbeats get no reply
        if kind == "stats":
            return {"type": "stats", **self.stats()}
        return {"type": "error", "message": f"unknown message type {kind!r}"}

    # -- client ops ----------------------------------------------------- #

    def _handle_submit(self, msg: dict) -> dict:
        key = msg.get("key")
        payload = msg.get("job")
        if not key or not isinstance(payload, dict):
            return {"type": "error", "message": "submit needs key and job"}
        with self._cond:
            job = self._jobs.get(key)
            if job is not None:
                return {"type": "accepted", "key": key, "state": job.state}
            value = self._store_lookup(payload)
            job = _Job(key, None if value is not None else payload)
            if value is not None:
                job.state = "done"
                job.value = value
                job.completed = time.time()
                self._log(f"job {key}: served from store")
            else:
                self._queue.append(key)
                self._log(f"job {key}: queued")
            self._jobs[key] = job
            self._persist(job)
            self._cond.notify_all()
            return {"type": "accepted", "key": key, "state": job.state}

    def _store_lookup(self, payload: dict) -> "dict | None":
        """Answer a sim submission from the shared cache, if possible."""
        if self._cache is None or payload.get("kind") != "sim":
            return None
        try:
            spec = spec_from_dict(payload["spec"])
            hit = self._cache.get(spec)
        except Exception:
            return None
        if hit is None:
            return None
        elapsed = self._cache.recorded_time(spec)
        return {
            "result": run_result_to_dict(hit),
            "elapsed": 0.0 if elapsed is None else elapsed,
            "served": 0,
            "cached": True,
        }

    def _handle_wait(self, msg: dict) -> dict:
        keys = msg.get("keys") or []
        with self._cond:
            while True:
                for key in keys:
                    job = self._jobs.get(key)
                    if job is not None and job.state == "done":
                        return {"type": "result", "key": key,
                                "value": job.value}
                if self._shutdown:
                    return {"type": "error",
                            "message": "server shutting down"}
                unknown = [k for k in keys if k not in self._jobs]
                if unknown:
                    return {"type": "error",
                            "message": f"unknown job keys: {unknown[:3]}"}
                self._cond.wait(timeout=1.0)

    # -- worker ops ----------------------------------------------------- #

    def _handle_fetch(self, conn_id: str) -> dict:
        deadline = time.monotonic() + FETCH_PARK_SECONDS
        with self._cond:
            while True:
                if self._shutdown:
                    return {"type": "shutdown"}
                if self._queue:
                    key = self._queue.popleft()
                    job = self._jobs[key]
                    if job.state != "queued":
                        # Resolved while parked in the queue (a stale
                        # lease's worker woke up and finished late).
                        continue
                    job.state = "running"
                    job.worker = conn_id
                    job.leased = time.monotonic()
                    self._persist(job)
                    self._log(f"job {key}: assigned to {conn_id}")
                    reply = {"type": "job", "key": key, "job": job.payload}
                    if self.cache_dir is not None:
                        reply["cache_dir"] = str(self.cache_dir)
                    return reply
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return {"type": "idle"}
                self._cond.wait(timeout=remaining)

    def _handle_done(self, msg: dict, conn_id: str) -> dict:
        key = msg.get("key")
        value = msg.get("value")
        with self._cond:
            job = self._jobs.get(key)
            if job is not None and job.state != "done":
                job.state = "done"
                job.value = value
                job.worker = conn_id
                job.leased = None
                job.completed = time.time()
                self._persist(job)
                self._log(f"job {key}: done by {conn_id}")
                self._cond.notify_all()
            return {"type": "ack", "key": key}

    def _handle_heartbeat(self, conn_id: str) -> None:
        """Renew the lease on every job the sending worker is running."""
        with self._cond:
            for job in self._jobs.values():
                if job.state == "running" and job.worker == conn_id:
                    job.leased = time.monotonic()

    def _reap_worker(self, conn_id: str) -> None:
        """Requeue every job a vanished worker was running."""
        with self._cond:
            orphaned = [
                job for job in self._jobs.values()
                if job.state == "running" and job.worker == conn_id
            ]
            for job in orphaned:
                self._requeue_locked(job, f"{conn_id} vanished")
            if orphaned:
                self._cond.notify_all()

    def _requeue_locked(self, job: _Job, why: str) -> None:
        """Put a running job back at the queue front (caller holds lock)."""
        job.state = "queued"
        job.worker = None
        job.leased = None
        # Front of the queue: the job already waited its turn.
        self._queue.appendleft(job.key)
        self._persist(job)
        self._log(f"job {job.key}: {why}, requeued")

    def _lease_loop(self) -> None:
        """Requeue running jobs whose worker stopped heartbeating.

        A vanished worker is caught by :meth:`_reap_worker` when its
        connection drops; this loop catches the nastier case — a worker
        that is hung but still connected, holding its job forever.  The
        stale worker's late ``done`` (if it ever wakes) is still
        accepted by :meth:`_handle_done`, which is idempotent.
        """
        assert self.lease is not None
        interval = min(self.lease / 4.0, 1.0)
        while True:
            with self._cond:
                if self._shutdown:
                    return
                self._cond.wait(timeout=interval)
                if self._shutdown:
                    return
                now = time.monotonic()
                stalled = [
                    job for job in self._jobs.values()
                    if job.state == "running"
                    and job.leased is not None
                    and now - job.leased > self.lease
                ]
                for job in stalled:
                    self._requeue_locked(
                        job,
                        f"lease expired on {job.worker} "
                        f"({self.lease:.1f}s without heartbeat)",
                    )
                if stalled:
                    self._cond.notify_all()

    # -- persistent index ----------------------------------------------- #

    def _persist(self, job: _Job) -> None:
        """Atomically write one job's index entry (caller holds the lock).

        Queued/running entries keep the payload so a restarted server
        resumes them; done entries keep check values (small reports) but
        drop sim values — sim results live in the shared cache, and a
        resubmission is answered from the store.
        """
        if self.index_dir is None:
            return
        doc: dict = {
            "schema": 1,
            "key": job.key,
            "kind": (job.payload or {}).get("kind", "sim"),
            "state": job.state,
            "worker": job.worker,
            "submitted": job.submitted,
            "completed": job.completed,
        }
        if job.state != "done":
            doc["payload"] = job.payload
        elif job.key.startswith("check-"):
            doc["value"] = job.value
        self.index_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.index_dir, prefix=job.key, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, separators=(",", ":"))
            os.replace(tmp, self.index_dir / f"{job.key}.json")
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _quarantine(self, path: Path, why: str) -> None:
        """Move a broken index entry aside so it never wedges a resume.

        The entry's job is effectively requeued through idempotent
        resubmission: with the record gone, the next client ``submit``
        of the same key queues it fresh (or answers it from the store)
        instead of colliding with a half-parsed ghost.
        """
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
            self._log(f"index entry {path.name}: {why}; "
                      f"quarantined as {target.name}")
        except OSError as exc:
            self._log(f"index entry {path.name}: {why}; "
                      f"could not quarantine ({exc}), ignored")

    def _load_index(self) -> None:
        """Resume persisted jobs: interrupted work requeues, finished
        check reports restore.  Done sims restore as index-only records
        (their results are answered from the cache on resubmission).

        A truncated or otherwise corrupt entry (a crash mid-``os.replace``
        on exotic filesystems, manual edits, disk faults) is logged and
        quarantined — resume must never crash on one bad record."""
        if self.index_dir is None or not self.index_dir.is_dir():
            return
        entries = sorted(self.index_dir.glob("*.json"))
        resumed = 0
        for path in entries:
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                self._quarantine(path, f"unreadable ({exc})")
                continue
            if not isinstance(doc, dict):
                self._quarantine(
                    path, f"expected a JSON object, got {type(doc).__name__}"
                )
                continue
            key = doc.get("key")
            if not key or not isinstance(key, str):
                self._quarantine(path, "missing job key")
                continue
            if key in self._jobs:
                continue
            state = doc.get("state")
            if state in ("queued", "running"):
                payload = doc.get("payload")
                if not isinstance(payload, dict):
                    self._quarantine(
                        path, f"{state} entry lost its payload"
                    )
                    continue
                job = _Job(key, payload)
                job.submitted = doc.get("submitted", job.submitted)
                self._jobs[key] = job
                self._queue.append(key)
                if state == "running":
                    job.state = "queued"
                    self._persist(job)
                resumed += 1
            elif state == "done" and isinstance(doc.get("value"), dict):
                job = _Job(key, None)
                job.state = "done"
                job.value = doc["value"]
                job.submitted = doc.get("submitted", job.submitted)
                job.completed = doc.get("completed")
                self._jobs[key] = job
        if resumed:
            self._log(f"resumed {resumed} interrupted job(s) from the index")

    def _log(self, message: str) -> None:
        if self.progress:
            print(f"[serve] {message}", file=sys.stderr, flush=True)


# --------------------------------------------------------------------- #
# Worker
# --------------------------------------------------------------------- #

def _connect_with_retry(
    addr: tuple[str, int],
    retries: int,
    backoff: float,
    log,
) -> socket.socket:
    """Dial the service, retrying with capped exponential backoff.

    A worker is typically launched alongside (or before) its server —
    by a job scheduler, a CI step, or a shell one-liner — so "nothing
    is listening yet" is a normal startup race, not an error.  Retry
    ``retries`` times, sleeping ``backoff * 2**attempt`` (capped at
    :data:`CONNECT_BACKOFF_CAP`) between dials, then give up and
    re-raise the last ``OSError``.
    """
    attempt = 0
    while True:
        try:
            return socket.create_connection(addr)
        except OSError as exc:
            if attempt >= retries:
                raise
            delay = min(backoff * 2.0 ** attempt, CONNECT_BACKOFF_CAP)
            attempt += 1
            log(f"connect to {addr[0]}:{addr[1]} failed ({exc}); "
                f"retry {attempt}/{retries} in {delay:.1f}s")
            time.sleep(delay)


def run_worker(
    addr: tuple[str, int],
    *,
    sim_backend: "str | None" = None,
    cache_dir: "str | os.PathLike | None" = None,
    max_jobs: "int | None" = None,
    connect_retries: int = 0,
    connect_backoff: float = 0.5,
    progress: bool = False,
) -> int:
    """Pull-model worker loop; returns the number of jobs executed.

    Connects to the experiment server (retrying ``connect_retries``
    times with capped exponential backoff seeded at ``connect_backoff``
    seconds, so workers may be launched before their server), long-polls
    ``fetch``, executes each job with the engine's own job body, and
    writes sim results — full checkpoint images included — into the
    shared artifact store before reporting the (image-stripped) JSON
    result back.  ``cache_dir`` overrides the server-advertised store
    (multi-host workers mount it elsewhere); ``sim_backend`` overrides
    the per-job kernel backend.  When the server advertises a job
    lease, a background thread heartbeats at a third of it so a slow
    (but live) job keeps its lease.  Exits after ``max_jobs`` jobs, on
    server shutdown, or on SIGINT.
    """
    from . import engine as engine_mod

    executed = 0

    def log(message: str) -> None:
        if progress:
            print(f"[worker] {message}", file=sys.stderr, flush=True)

    sock = _connect_with_retry(addr, connect_retries, connect_backoff, log)
    rfile = sock.makefile("rb")
    send_lock = threading.Lock()
    stop_beats = threading.Event()

    def send(obj: dict) -> None:
        with send_lock:
            _send(sock, obj)

    def beat_loop(interval: float) -> None:
        while not stop_beats.wait(interval):
            try:
                send({"type": "heartbeat"})
            except OSError:
                return

    try:
        send({"type": "hello", "role": "worker",
              "protocol": PROTOCOL_VERSION})
        welcome = _recv(rfile)
        if not welcome or welcome.get("type") != "welcome":
            raise DispatchError(
                f"experiment service refused the handshake: {welcome!r}"
            )
        log(f"connected to {addr[0]}:{addr[1]}")
        lease = welcome.get("lease")
        if lease:
            threading.Thread(
                target=beat_loop,
                args=(max(float(lease) / 3.0, 0.05),),
                name="repro-worker-heartbeat",
                daemon=True,
            ).start()
        while max_jobs is None or executed < max_jobs:
            send({"type": "fetch"})
            msg = _recv(rfile)
            if msg is None or msg.get("type") == "shutdown":
                log("server went away")
                break
            if msg.get("type") == "idle":
                continue
            if msg.get("type") != "job":
                raise DispatchError(f"unexpected fetch reply: {msg!r}")
            key = msg["key"]
            payload = msg["job"]
            store = cache_dir if cache_dir is not None else msg.get("cache_dir")
            if payload.get("kind") == "check":
                value = _run_check_job(payload["oracle"], payload["schedule"])
            else:
                spec, deps, guard, job_backend = job_from_dict(payload)
                result, elapsed, served = engine_mod._execute_job(
                    spec, deps, guard, store,
                    sim_backend if sim_backend is not None else job_backend,
                )
                if store is not None:
                    # Worker-side put, before the JSON hop strips image
                    # payloads: this is what keeps the shared image tier
                    # warm for restart chains.
                    ResultCache(store).put(spec, result, elapsed=elapsed)
                value = {
                    "result": run_result_to_dict(result),
                    "elapsed": elapsed,
                    "served": served,
                    "cached": False,
                }
            send({"type": "done", "key": key, "value": value})
            ack = _recv(rfile)
            if ack is None:
                break
            executed += 1
            log(f"job {key}: done ({executed} total)")
    except KeyboardInterrupt:
        log("interrupted")
    finally:
        stop_beats.set()
        try:
            send({"type": "bye"})
        except OSError:
            pass
        rfile.close()
        sock.close()
    return executed


# --------------------------------------------------------------------- #
# Client-side dispatch backend
# --------------------------------------------------------------------- #

class ServiceDispatch(DispatchBackend):
    """Dispatch backend that ships jobs to an :class:`ExperimentServer`.

    One connection per engine, held across waves and batches (a sweep is
    one client session server-side).  Submission sends the job keyed by
    content hash; collection long-polls ``wait`` over the outstanding
    keys.  Identical submissions (same key) share one server-side job
    and resolve together.
    """

    name = "service"

    def __init__(self, config: DispatchConfig):
        super().__init__(config)
        if config.service_addr is None:
            raise DispatchError(
                "service dispatch needs an address; pass --service HOST:PORT "
                "or set REPRO_SERVICE_ADDR"
            )
        self._sock: "socket.socket | None" = None
        self._rfile = None
        self._awaiting: "dict[str, list[DispatchJob]]" = {}
        # Keys whose submission found the job already done server-side:
        # no simulation happened on this client's behalf, so the result
        # is accounted as a (store) cache hit whatever the original
        # execution recorded.
        self._prehit: "set[str]" = set()

    def _connect(self) -> socket.socket:
        if self._sock is None:
            host, port = self.config.service_addr
            try:
                sock = socket.create_connection((host, port))
            except OSError as exc:
                raise DispatchError(
                    f"cannot reach experiment service at {host}:{port} "
                    f"({exc}); start one with `repro-mpi serve`"
                ) from exc
            rfile = sock.makefile("rb")
            _send(sock, {"type": "hello", "role": "client",
                         "protocol": PROTOCOL_VERSION})
            welcome = _recv(rfile)
            if not welcome or welcome.get("type") != "welcome":
                sock.close()
                raise DispatchError(
                    f"experiment service refused the handshake: {welcome!r}"
                )
            self._sock = sock
            self._rfile = rfile
        return self._sock

    def _roundtrip(self, msg: dict) -> dict:
        sock = self._connect()
        try:
            _send(sock, msg)
            reply = _recv(self._rfile)
        except OSError as exc:
            raise DispatchError(
                f"experiment service connection lost ({exc})"
            ) from exc
        if reply is None:
            raise DispatchError("experiment service closed the connection")
        if reply.get("type") == "error":
            raise DispatchError(
                f"experiment service error: {reply.get('message')}"
            )
        return reply

    def _enqueue(self, job: DispatchJob, payload: dict) -> None:
        if payload["kind"] == "check":
            key = check_job_key(payload["oracle"], payload["schedule"])
            doc = payload
        else:
            key = spec_hash(payload["spec"])
            doc = job_to_dict(
                payload["spec"],
                payload["deps"],
                guard=self.config.guard,
                sim_backend=self.config.sim_backend,
            )
        reply = self._roundtrip({"type": "submit", "key": key, "job": doc})
        if reply.get("type") != "accepted":
            raise DispatchError(f"unexpected submit reply: {reply!r}")
        if reply.get("state") == "done":
            self._prehit.add(key)
        job.key = key
        self._awaiting.setdefault(key, []).append(job)

    def _pump(self) -> DispatchJob:
        keys = [k for k, jobs in self._awaiting.items()
                if any(not j.done for j in jobs)]
        if not keys:
            raise DispatchError("no outstanding dispatch jobs")
        reply = self._roundtrip({"type": "wait", "keys": keys})
        if reply.get("type") != "result":
            raise DispatchError(f"unexpected wait reply: {reply!r}")
        key = reply["key"]
        value = reply["value"]
        jobs = self._awaiting.pop(key)
        cached = bool(value.get("cached", False)) or key in self._prehit
        self._prehit.discard(key)
        first = jobs[0]
        for waiting in jobs:
            if waiting.kind == "check":
                waiting._resolve(value)
            else:
                waiting._resolve((
                    run_result_from_dict(value["result"]),
                    value.get("elapsed", 0.0),
                    value.get("served", 0),
                    cached,
                ))
        return first

    def close(self) -> None:
        if self._sock is not None:
            try:
                _send(self._sock, {"type": "bye"})
            except OSError:
                pass
            self._rfile.close()
            self._sock.close()
            self._sock = None
            self._rfile = None
