"""Persistent on-disk result cache keyed by spec content hash.

Layout: ``<cache_dir>/v<SCHEMA_VERSION>/<spec_hash>.json`` — one JSON
document per unique :class:`~repro.harness.spec.RunSpec`.  Bumping
``SCHEMA_VERSION`` (a change to spec semantics or result layout)
silently orphans older entries rather than misreading them; corrupt or
truncated files count as misses and are overwritten on the next store.

The cache stores the JSON form of :class:`RunResult`, which drops
checkpoint-image payloads (see ``spec.py``); a cached checkpointing run
therefore replays every *measurement* but cannot seed a restart — the
execution layer re-simulates the parent in that case, and the restart
run's own result is cached in full, so warm reruns still execute zero
simulations.

The default location is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-mpi``.
Writes are atomic (tempfile + rename) so concurrent engine workers and
concurrent CLI invocations can share a cache directory safely.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from .runner import RunResult
from .spec import (
    SCHEMA_VERSION,
    RunSpec,
    run_result_from_dict,
    run_result_to_dict,
    spec_hash,
    spec_to_dict,
)

__all__ = ["ResultCache", "default_cache_dir"]

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-mpi``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-mpi"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0


class ResultCache:
    """Spec-hash-keyed JSON store for :class:`RunResult` values."""

    def __init__(self, directory: "Path | str | None" = None):
        self.root = Path(directory) if directory is not None else default_cache_dir()
        self.stats = CacheStats()

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{SCHEMA_VERSION}"

    def path_for(self, spec: RunSpec) -> Path:
        return self.version_dir / f"{spec_hash(spec)}.json"

    def get(self, spec: RunSpec) -> RunResult | None:
        """The cached result for ``spec``, or None on miss/corruption."""
        path = self.path_for(spec)
        try:
            raw = path.read_text()
            document = json.loads(raw)
            result = run_result_from_dict(document["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, spec: RunSpec, result: RunResult) -> Path:
        """Atomically store ``result`` under ``spec``'s hash."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            # The spec rides along for debuggability (`cat` a cache entry
            # to see which job it belongs to); only the hash keys lookup.
            "spec": spec_to_dict(spec),
            "result": run_result_to_dict(result),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(document, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def clear(self) -> int:
        """Delete all entries for the current schema; returns the count."""
        removed = 0
        if self.version_dir.is_dir():
            for entry in self.version_dir.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.version_dir.is_dir():
            return 0
        return sum(1 for _ in self.version_dir.glob("*.json"))
