"""Persistent on-disk result cache keyed by spec content hash.

Layout: ``<cache_dir>/v<SCHEMA_VERSION>/<spec_hash>.json`` — one JSON
document per unique :class:`~repro.harness.spec.RunSpec`.  Bumping
``SCHEMA_VERSION`` (a change to spec semantics or result layout)
silently orphans older entries rather than misreading them; corrupt or
truncated files count as misses and are overwritten on the next store.

The cache stores the JSON form of :class:`RunResult`, which drops
checkpoint-image payloads (see ``spec.py``); a cached checkpointing run
therefore replays every *measurement* but cannot seed a restart — the
execution layer re-simulates the parent in that case, and the restart
run's own result is cached in full, so warm reruns still execute zero
simulations.

Alongside results, the cache records each spec's **execution wall
time** — both inside the entry document (``"elapsed"``) and in a small
sidecar (``v<SCHEMA>-timings.json``) that survives ``clear``/``prune``.
The engine uses these recorded times to schedule each dependency wave
longest-pole-first; see :meth:`ResultCache.recorded_time`.

The default location is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-mpi``.
Writes are atomic (tempfile + rename) so concurrent engine workers and
concurrent CLI invocations can share a cache directory safely.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .runner import RunResult
from .spec import (
    SCHEMA_VERSION,
    RunSpec,
    run_result_from_dict,
    run_result_to_dict,
    spec_hash,
    spec_to_dict,
)

__all__ = ["ResultCache", "default_cache_dir"]

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-mpi``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-mpi"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0


class ResultCache:
    """Spec-hash-keyed JSON store for :class:`RunResult` values."""

    def __init__(self, directory: "Path | str | None" = None):
        self.root = Path(directory) if directory is not None else default_cache_dir()
        self.stats = CacheStats()
        #: spec hash -> last recorded execution wall time (seconds);
        #: lazily loaded from the sidecar on first use.
        self._timings: dict[str, float] | None = None

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{SCHEMA_VERSION}"

    @property
    def timings_path(self) -> Path:
        # Deliberately *outside* version_dir so clear()/prune() leave the
        # cost model intact: after a cache wipe the next batch still
        # schedules longest-pole-first from historical times.
        return self.root / f"v{SCHEMA_VERSION}-timings.json"

    def path_for(self, spec: RunSpec) -> Path:
        return self.version_dir / f"{spec_hash(spec)}.json"

    def get(self, spec: RunSpec) -> RunResult | None:
        """The cached result for ``spec``, or None on miss/corruption."""
        path = self.path_for(spec)
        try:
            raw = path.read_text()
            document = json.loads(raw)
            result = run_result_from_dict(document["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        elapsed = document.get("elapsed")
        if isinstance(elapsed, (int, float)) and elapsed > 0:
            # Harvest the recorded time into memory (no sidecar write):
            # a warm run learns its cost model from the entries it reads.
            self._load_timings()[spec_hash(spec)] = float(elapsed)
        self.stats.hits += 1
        return result

    # ------------------------------------------------------------------ #
    # Execution-time records (the engine's scheduling cost model)
    # ------------------------------------------------------------------ #

    def _load_timings(self) -> dict[str, float]:
        if self._timings is None:
            try:
                raw = json.loads(self.timings_path.read_text())
                self._timings = {
                    str(k): float(v)
                    for k, v in raw.items()
                    if isinstance(v, (int, float)) and v > 0
                }
            except (OSError, ValueError, AttributeError):
                self._timings = {}
        return self._timings

    def recorded_time(self, spec: RunSpec) -> float | None:
        """Last recorded execution wall time for ``spec``, if any."""
        return self._load_timings().get(spec_hash(spec))

    def record_time(self, spec: RunSpec, seconds: float) -> None:
        """Record ``spec``'s execution wall time in the sidecar.

        The write re-reads the sidecar and merges before replacing it,
        so concurrent engines sharing a cache directory lose at most a
        race on the *same* spec's time, never each other's entries.
        """
        if seconds <= 0:
            return
        timings = self._load_timings()
        timings[spec_hash(spec)] = seconds
        try:
            on_disk = json.loads(self.timings_path.read_text())
            if isinstance(on_disk, dict):
                for key, value in on_disk.items():
                    if isinstance(value, (int, float)) and value > 0:
                        timings.setdefault(str(key), float(value))
        except (OSError, ValueError):
            pass
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(timings, fh, separators=(",", ":"))
            os.replace(tmp, self.timings_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def timing_count(self) -> int:
        return len(self._load_timings())

    def put(
        self, spec: RunSpec, result: RunResult, *, elapsed: float | None = None
    ) -> Path:
        """Atomically store ``result`` under ``spec``'s hash.

        ``elapsed`` (execution wall seconds) rides along in the document
        and feeds the scheduling cost model via :meth:`record_time`.
        """
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            # The spec rides along for debuggability (`cat` a cache entry
            # to see which job it belongs to); only the hash keys lookup.
            "spec": spec_to_dict(spec),
            "result": run_result_to_dict(result),
        }
        if elapsed is not None and elapsed > 0:
            document["elapsed"] = elapsed
            self.record_time(spec, elapsed)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(document, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def clear(self) -> int:
        """Delete all entries for the current schema; returns the count.

        Recorded execution times (the scheduling cost model) survive.
        """
        removed = 0
        if self.version_dir.is_dir():
            for entry in self.version_dir.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def prune(self, specs: "Iterable[RunSpec]") -> int:
        """Delete the entries for ``specs`` (misses ignored); returns the
        number removed.  Recorded execution times survive."""
        removed = 0
        for spec in specs:
            try:
                self.path_for(spec).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def total_bytes(self) -> int:
        """On-disk footprint of the current schema's entries."""
        if not self.version_dir.is_dir():
            return 0
        total = 0
        for entry in self.version_dir.glob("*.json"):
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        if not self.version_dir.is_dir():
            return 0
        return sum(1 for _ in self.version_dir.glob("*.json"))
