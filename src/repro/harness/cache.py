"""Persistent on-disk result cache keyed by spec content hash.

Layout: ``<cache_dir>/v<SCHEMA_VERSION>/<hh>/<spec_hash>.json`` — one
JSON document per unique :class:`~repro.harness.spec.RunSpec`, fanned
into 256 two-hex-digit shard directories (``<hh>`` is the hash's first
two characters) so a long-lived shared cache never accumulates tens of
thousands of files in one directory.  Caches written before sharding
stored everything flat; the flat layout is still read transparently and
migrated as it is touched (a legacy entry moves into its shard on the
first hit), so no flag day is needed.  Bumping ``SCHEMA_VERSION`` (a
change to spec semantics or result layout) silently orphans older
entries rather than misreading them; corrupt or truncated files count
as misses and are overwritten on the next store.

The cache stores the JSON form of :class:`RunResult`, which drops
checkpoint-image payloads (see ``spec.py``); on its own, a cached
checkpointing run replays every *measurement* but cannot seed a
restart.  The **image tier** closes that gap: whenever a stored result
carries full checkpoint images, each committed checkpoint's image map
is packed (compressed pickle with a SHA-256 digest; see
:func:`repro.mana.image.pack_image_set`) and stored *content-addressed*
under ``v<SCHEMA>-images/blobs/<hh>/<sha256>.blob``, with a tiny
per-spec pointer file
``v<SCHEMA>-images/<hh>/<spec_hash>.c<committed_index>.img``
(sharded like entries, flat legacy locations still served and migrated
on read) holding the digest — identical image sets reachable from several
parent specs are stored once.  A warm restart then loads its parent's
images straight from the tier instead of re-simulating the parent run.
Integrity failures, truncations, dangling pointers, and blobs from
older formats all read as misses (pointer files written before the
dedupe hold the archive inline and are detected by magic, so legacy
caches keep serving), and the tier can only ever make restarts faster,
never wrong.  Pointers are evicted together with their spec's entry by
``clear``/``prune`` (a blob falls when its last pointer does), payloads
age out with ``prune_older_than``, and the tier's total footprint can
be capped with :meth:`ResultCache.prune_images_to_max_bytes`.

Alongside results, the cache records each spec's **execution wall
time** — both inside the entry document (``"elapsed"``) and in a small
sidecar (``v<SCHEMA>-timings.json``).  The sidecar survives ``clear``
(a wiped cache still schedules from history) but tracks evictions:
``prune`` variants drop the evicted hashes' timings, and the sidecar is
capped at :data:`TIMINGS_MAX_ENTRIES` entries (oldest records evicted
first) so it cannot grow without bound.  The engine uses these recorded
times to schedule each dependency wave longest-pole-first; see
:meth:`ResultCache.recorded_time`.

The default location is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-mpi``.
Writes are atomic (tempfile + rename) so concurrent engine workers and
concurrent CLI invocations can share a cache directory safely.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..mana import CheckpointImage
from ..mana.image import (
    ARCHIVE_MAGIC,
    ImageError,
    image_set_digest,
    pack_image_set,
    unpack_image_set,
)
from .runner import RunResult
from .spec import (
    SCHEMA_VERSION,
    RunSpec,
    record_has_full_images,
    run_result_from_dict,
    run_result_to_dict,
    spec_hash,
    spec_to_dict,
)

__all__ = ["ResultCache", "default_cache_dir", "TIMINGS_MAX_ENTRIES"]

ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Hard cap on timing-sidecar entries.  The sidecar survives ``clear``
#: and schema bumps by design (it is the scheduling cost model), which
#: also means nothing else ever shrinks it; the cap evicts the oldest
#: records once the model outgrows any plausible working set.
TIMINGS_MAX_ENTRIES = 4096


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-mpi``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-mpi"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Image-tier traffic: blobs written on ``put`` / served to restarts.
    image_stores: int = 0
    image_hits: int = 0


class ResultCache:
    """Spec-hash-keyed JSON store for :class:`RunResult` values."""

    def __init__(self, directory: "Path | str | None" = None):
        self.root = Path(directory) if directory is not None else default_cache_dir()
        self.stats = CacheStats()
        #: spec hash -> (wall seconds, record epoch); lazily loaded from
        #: the sidecar on first use.  Legacy sidecars stored a bare float
        #: per hash; those load with epoch 0 (first in line for eviction).
        self._timings: dict[str, tuple[float, float]] | None = None
        #: Hashes explicitly evicted this session — excluded when the
        #: sidecar write merges concurrent writers' entries back in, so
        #: an eviction is not undone by the merge.
        self._dropped_timings: set[str] = set()

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{SCHEMA_VERSION}"

    @property
    def images_dir(self) -> Path:
        """The image tier: one blob per (spec, committed checkpoint)."""
        return self.root / f"v{SCHEMA_VERSION}-images"

    @property
    def timings_path(self) -> Path:
        # Deliberately *outside* version_dir so clear()/prune() leave the
        # cost model intact: after a cache wipe the next batch still
        # schedules longest-pole-first from historical times.
        return self.root / f"v{SCHEMA_VERSION}-timings.json"

    # Entries and image pointers are fanned into 256 shard directories
    # named by the key's first two hex digits; blobs likewise under
    # ``blobs/<hh>/``.  All reads fall back to the pre-sharding flat
    # location and migrate what they find (atomic rename into the shard,
    # best-effort: a read-only cache keeps serving flat files forever).

    @staticmethod
    def _shard(key: str) -> str:
        return key[:2]

    def path_for(self, spec: RunSpec) -> Path:
        key = spec_hash(spec)
        return self.version_dir / self._shard(key) / f"{key}.json"

    def _legacy_entry_path(self, key: str) -> Path:
        return self.version_dir / f"{key}.json"

    @staticmethod
    def _migrate(legacy: Path, sharded: Path) -> None:
        """Move a flat-layout file into its shard (best-effort)."""
        try:
            sharded.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, sharded)
        except OSError:
            pass

    def get(self, spec: RunSpec) -> RunResult | None:
        """The cached result for ``spec``, or None on miss/corruption."""
        path = self.path_for(spec)
        legacy = self._legacy_entry_path(spec_hash(spec))
        try:
            try:
                raw = path.read_text()
            except OSError:
                raw = legacy.read_text()
                self._migrate(legacy, path)
            document = json.loads(raw)
            result = run_result_from_dict(document["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        elapsed = document.get("elapsed")
        if isinstance(elapsed, (int, float)) and elapsed > 0:
            # Harvest the recorded time into memory (no sidecar write):
            # a warm run learns its cost model from the entries it reads.
            # Stamped "now": a hit re-confirms the entry, so if the
            # harvest ever reaches the sidecar it must not sort as
            # ancient and be first out at the cap.
            timings = self._load_timings()
            key = spec_hash(spec)
            stamp = max(
                time.time(), timings[key][1] if key in timings else 0.0
            )
            timings[key] = (float(elapsed), stamp)
        self.stats.hits += 1
        return result

    # ------------------------------------------------------------------ #
    # Execution-time records (the engine's scheduling cost model)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _parse_timing(value) -> "tuple[float, float] | None":
        """One sidecar entry: either legacy ``seconds`` or ``[seconds, epoch]``."""
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return (float(value), 0.0) if value > 0 else None
        if (
            isinstance(value, (list, tuple))
            and len(value) == 2
            and all(isinstance(v, (int, float)) for v in value)
            and value[0] > 0
        ):
            return (float(value[0]), float(value[1]))
        return None

    def _read_timings_file(self) -> dict[str, tuple[float, float]]:
        try:
            raw = json.loads(self.timings_path.read_text())
            if not isinstance(raw, dict):
                return {}
        except (OSError, ValueError):
            return {}
        out: dict[str, tuple[float, float]] = {}
        for key, value in raw.items():
            parsed = self._parse_timing(value)
            if parsed is not None:
                out[str(key)] = parsed
        return out

    def _load_timings(self) -> dict[str, tuple[float, float]]:
        if self._timings is None:
            self._timings = self._read_timings_file()
        return self._timings

    def _write_timings(self) -> None:
        """Merge-on-write sidecar replacement.

        Re-reads the sidecar and merges entries other writers added, so
        concurrent engines sharing a cache directory lose at most a race
        on the *same* spec's time, never each other's entries.  Hashes
        this cache explicitly evicted stay evicted, and the result is
        capped at :data:`TIMINGS_MAX_ENTRIES` (oldest records first out)
        so the sidecar cannot grow without bound across schema bumps and
        pruned figures.
        """
        timings = self._load_timings()
        for key, value in self._read_timings_file().items():
            if key not in self._dropped_timings:
                timings.setdefault(key, value)
        if len(timings) > TIMINGS_MAX_ENTRIES:
            keep = sorted(timings.items(), key=lambda kv: kv[1][1], reverse=True)
            timings = dict(keep[:TIMINGS_MAX_ENTRIES])
            self._timings = timings
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(
                    {k: [s, t] for k, (s, t) in timings.items()},
                    fh,
                    separators=(",", ":"),
                )
            os.replace(tmp, self.timings_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def recorded_time(self, spec: RunSpec) -> float | None:
        """Last recorded execution wall time for ``spec``, if any."""
        entry = self._load_timings().get(spec_hash(spec))
        return None if entry is None else entry[0]

    def record_time(self, spec: RunSpec, seconds: float) -> None:
        """Record ``spec``'s execution wall time in the sidecar."""
        if seconds <= 0:
            return
        key = spec_hash(spec)
        self._load_timings()[key] = (seconds, time.time())
        self._dropped_timings.discard(key)
        self._write_timings()

    def drop_timings(self, hashes: Iterable[str]) -> int:
        """Evict the given spec hashes from the timing sidecar.

        Returns how many were present in this cache's own view.  The
        sidecar is rewritten whenever anything was *requested*, not
        only when the in-memory view held it: a concurrent writer may
        have recorded the hash after this cache loaded its view, and
        the merge-on-write (which excludes ``_dropped_timings``) is
        what makes the eviction stick on disk.
        """
        timings = self._load_timings()
        dropped = 0
        requested = False
        for key in hashes:
            requested = True
            self._dropped_timings.add(key)
            if timings.pop(key, None) is not None:
                dropped += 1
        if requested:
            self._write_timings()
        return dropped

    def timing_count(self) -> int:
        return len(self._load_timings())

    # ------------------------------------------------------------------ #
    # Image tier (full checkpoint images for warm restarts)
    #
    # Content-addressed with per-spec pointers: the packed image-set
    # blob lives once under ``blobs/<sha256>.blob`` and each
    # ``<spec_hash>.c<index>.img`` file is a tiny pointer holding that
    # digest — so identical image sets reachable from several parents
    # (the same committed state cached under different spec spellings,
    # or several commits snapshotting the same terminal world) are
    # stored once.  Pointer files written by older versions hold the
    # archive inline; readers detect the archive magic and keep serving
    # them, so legacy caches never break.
    # ------------------------------------------------------------------ #

    @property
    def blobs_dir(self) -> Path:
        return self.images_dir / "blobs"

    def _pointer_path(self, spec_or_hash: "RunSpec | str", index: int) -> Path:
        key = (
            spec_or_hash
            if isinstance(spec_or_hash, str)
            else spec_hash(spec_or_hash)
        )
        return self.images_dir / self._shard(key) / f"{key}.c{int(index)}.img"

    def _legacy_pointer_path(
        self, spec_or_hash: "RunSpec | str", index: int
    ) -> Path:
        key = (
            spec_or_hash
            if isinstance(spec_or_hash, str)
            else spec_hash(spec_or_hash)
        )
        return self.images_dir / f"{key}.c{int(index)}.img"

    def _read_pointer_bytes(
        self, spec_or_hash: "RunSpec | str", index: int
    ) -> "bytes | None":
        """Raw pointer-file contents from the sharded location, else the
        flat legacy one (migrating it); None when neither exists."""
        path = self._pointer_path(spec_or_hash, index)
        try:
            return path.read_bytes()
        except OSError:
            pass
        legacy = self._legacy_pointer_path(spec_or_hash, index)
        try:
            raw = legacy.read_bytes()
        except OSError:
            return None
        self._migrate(legacy, path)
        return raw

    def _blob_path(self, digest: str) -> Path:
        return self.blobs_dir / self._shard(digest) / f"{digest}.blob"

    def _legacy_blob_path(self, digest: str) -> Path:
        return self.blobs_dir / f"{digest}.blob"

    def _read_blob(self, digest: str) -> "bytes | None":
        path = self._blob_path(digest)
        try:
            return path.read_bytes()
        except OSError:
            pass
        legacy = self._legacy_blob_path(digest)
        try:
            raw = legacy.read_bytes()
        except OSError:
            return None
        self._migrate(legacy, path)
        return raw

    @staticmethod
    def _parse_pointer(raw: bytes) -> "str | None":
        """The digest a pointer file references, or None for anything
        else (legacy inline archive, corruption)."""
        if len(raw) > 200 or raw.startswith(ARCHIVE_MAGIC):
            return None
        text = raw.decode("ascii", "replace").strip()
        if len(text) == 64 and all(c in "0123456789abcdef" for c in text):
            return text
        return None

    def image_path_for(self, spec_or_hash: "RunSpec | str", index: int) -> Path:
        """Path of the stored image data for a spec's ``index``-th
        *committed* checkpoint: the content-addressed blob when a
        pointer exists, the file itself for legacy inline archives, or
        the not-yet-written pointer location.  Note that with blob
        dedupe this path may be shared by several specs."""
        raw = self._read_pointer_bytes(spec_or_hash, index)
        if raw is None:
            return self._pointer_path(spec_or_hash, index)
        digest = self._parse_pointer(raw)
        if digest is None:
            # Legacy inline archive: the pointer file is the data (it may
            # still sit in either layout — report wherever it lives now).
            pointer = self._pointer_path(spec_or_hash, index)
            return (
                pointer
                if pointer.is_file()
                else self._legacy_pointer_path(spec_or_hash, index)
            )
        blob = self._blob_path(digest)
        return blob if blob.is_file() else self._legacy_blob_path(digest)

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put_images(self, spec: RunSpec, result: RunResult) -> int:
        """Store every committed checkpoint's full images for ``spec``.

        Records without full images (e.g. a result that already crossed
        the JSON boundary) are skipped silently; returns the number of
        image sets stored (pointers written).  A blob whose digest is
        already present is not rewritten — that's the cross-spec dedupe.
        Writes are atomic for the same reason entry writes are.
        """
        committed = [r for r in result.checkpoints if r.committed]
        written = 0
        for index, record in enumerate(committed):
            if not record_has_full_images(record):
                continue
            blob = pack_image_set(record.images)
            digest = image_set_digest(blob)
            blob_path = self._blob_path(digest)
            blob_path.parent.mkdir(parents=True, exist_ok=True)
            legacy_blob = self._legacy_blob_path(digest)
            if blob_path.is_file():
                # Dedupe hit: refresh the payload's age so a blob a
                # fresh put just pointed at doesn't get age-evicted on
                # its *original* store date.
                try:
                    os.utime(blob_path)
                except OSError:
                    pass
            elif legacy_blob.is_file():
                # Dedupe hit in the flat legacy layout: migrate instead
                # of duplicating the payload, refreshing its age.
                self._migrate(legacy_blob, blob_path)
                if not blob_path.is_file():
                    self._atomic_write(blob_path, blob)
                try:
                    os.utime(blob_path)
                except OSError:
                    pass
            else:
                self._atomic_write(blob_path, blob)
            pointer = self._pointer_path(spec, index)
            pointer.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write(pointer, digest.encode() + b"\n")
            try:
                self._legacy_pointer_path(spec, index).unlink()
            except OSError:
                pass
            written += 1
            self.stats.image_stores += 1
        return written

    def get_images(
        self, spec_or_hash: "RunSpec | str", index: int
    ) -> "dict[int, CheckpointImage] | None":
        """The stored image map for a committed checkpoint, or None.

        Misses cover everything that could be wrong — no pointer, a
        dangling or garbled pointer, a truncated or digest-mismatching
        blob, a legacy/unknown format — so callers can always fall back
        to re-simulating the parent.
        """
        raw = self._read_pointer_bytes(spec_or_hash, index)
        if raw is None:
            return None
        if not raw.startswith(ARCHIVE_MAGIC):
            digest = self._parse_pointer(raw)
            if digest is None:
                return None
            raw = self._read_blob(digest)
            if raw is None:
                return None
        try:
            images = unpack_image_set(raw)
        except ImageError:
            return None
        self.stats.image_hits += 1
        return images

    def has_images(self, spec_or_hash: "RunSpec | str", index: int) -> bool:
        """Cheap existence probe (no read/verify) used by wave planning.

        A pointer that exists but dangles (or a blob that fails
        verification on the later :meth:`get_images`) degrades to parent
        re-simulation inside the job, so planning on existence alone is
        safe.
        """
        return (
            self._pointer_path(spec_or_hash, index).is_file()
            or self._legacy_pointer_path(spec_or_hash, index).is_file()
        )

    _SHARD_GLOB = "[0-9a-f][0-9a-f]"

    def _pointer_files(self) -> "list[Path]":
        if not self.images_dir.is_dir():
            return []
        files = list(self.images_dir.glob("*.img"))
        files.extend(self.images_dir.glob(f"{self._SHARD_GLOB}/*.img"))
        return files

    def _referenced_digests(self) -> set[str]:
        """Digests still referenced by at least one pointer file."""
        referenced = set()
        for pointer in self._pointer_files():
            try:
                digest = self._parse_pointer(pointer.read_bytes())
            except OSError:
                continue
            if digest is not None:
                referenced.add(digest)
        return referenced

    def _gc_blobs(self, candidates: Iterable[str]) -> int:
        """Delete candidate blobs no pointer references any more."""
        candidates = {d for d in candidates if d is not None}
        if not candidates:
            return 0
        candidates -= self._referenced_digests()
        removed = 0
        for digest in candidates:
            gone = False
            for path in (self._blob_path(digest),
                         self._legacy_blob_path(digest)):
                try:
                    path.unlink()
                    gone = True
                except OSError:
                    pass
            if gone:
                removed += 1
        return removed

    def _drop_images(self, hashes: Iterable[str]) -> int:
        """Delete the given spec hashes' pointers, then garbage-collect
        any blobs that lost their last reference."""
        if not self.images_dir.is_dir():
            return 0
        removed = 0
        candidates: set[str] = set()
        for key in hashes:
            locations = list(self.images_dir.glob(f"{key}.c*.img"))
            shard_dir = self.images_dir / self._shard(key)
            if shard_dir.is_dir():
                locations.extend(shard_dir.glob(f"{key}.c*.img"))
            for path in locations:
                try:
                    digest = self._parse_pointer(path.read_bytes())
                except OSError:
                    digest = None
                if digest is not None:
                    candidates.add(digest)
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        self._gc_blobs(candidates)
        return removed

    def _legacy_inline_files(self) -> "list[Path]":
        """Pointer-location files that hold a full archive inline
        (written before blob dedupe)."""
        inline = []
        for path in self._pointer_files():
            try:
                with open(path, "rb") as fh:
                    head = fh.read(len(ARCHIVE_MAGIC))
            except OSError:
                continue
            if head == ARCHIVE_MAGIC:
                inline.append(path)
        return inline

    def _blob_files(self) -> "list[Path]":
        if not self.blobs_dir.is_dir():
            return []
        files = list(self.blobs_dir.glob("*.blob"))
        files.extend(self.blobs_dir.glob(f"{self._SHARD_GLOB}/*.blob"))
        return files

    def image_count(self) -> int:
        """Stored image sets: unique blobs plus legacy inline archives."""
        return len(self._blob_files()) + len(self._legacy_inline_files())

    def image_bytes(self) -> int:
        """On-disk footprint of the image tier's payload (blobs and
        legacy inline archives; pointer files are noise-level)."""
        total = 0
        for entry in self._blob_files() + self._legacy_inline_files():
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return total

    def _drop_blob_and_pointers(self, blob: Path) -> bool:
        """Unlink one payload file and every pointer referencing it.
        Returns True iff the payload actually came off disk (callers
        only account evicted bytes/counts for real removals)."""
        digest = blob.name[: -len(".blob")] if blob.suffix == ".blob" else None
        try:
            blob.unlink()
        except OSError:
            return False
        if digest is None:
            return True  # legacy inline: the file was its own (only) pointer
        for pointer in self._pointer_files():
            try:
                if self._parse_pointer(pointer.read_bytes()) == digest:
                    pointer.unlink()
            except OSError:
                pass
        return True

    def prune_images_older_than(self, max_age_seconds: float) -> int:
        """Evict image payloads older (by mtime) than ``max_age_seconds``,
        along with the pointers that reference them."""
        cutoff = time.time() - max_age_seconds
        removed = 0
        for entry in self._blob_files() + self._legacy_inline_files():
            try:
                stale = entry.stat().st_mtime < cutoff
            except OSError:
                continue
            if stale and self._drop_blob_and_pointers(entry):
                removed += 1
        return removed

    def prune_images_to_max_bytes(self, max_bytes: int) -> int:
        """Evict oldest image payloads until the tier is at most
        ``max_bytes``.

        The size knob applies to the image tier alone: blobs dominate the
        cache's footprint by orders of magnitude, and evicting one only
        costs a future warm restart its fast path (the JSON results —
        every *measurement* — stay intact).  A deduped blob's eviction
        drops every spec pointer that referenced it.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        aged = []
        total = 0
        for entry in self._blob_files() + self._legacy_inline_files():
            try:
                st = entry.stat()
            except OSError:
                continue
            aged.append((st.st_mtime, entry.name, st.st_size, entry))
            total += st.st_size
        aged.sort()
        removed = 0
        for _, _, size, entry in aged:
            if total <= max_bytes:
                break
            if self._drop_blob_and_pointers(entry):
                total -= size
                removed += 1
        return removed

    def put(
        self, spec: RunSpec, result: RunResult, *, elapsed: float | None = None
    ) -> Path:
        """Atomically store ``result`` under ``spec``'s hash.

        ``elapsed`` (execution wall seconds) rides along in the document
        and feeds the scheduling cost model via :meth:`record_time`.
        A result still carrying full checkpoint images also lands in the
        image tier (:meth:`put_images`) so later restarts of this spec
        skip re-simulating it.
        """
        try:
            self.put_images(spec, result)
        except OSError:
            # The tier is strictly an accelerator: a blob write failing
            # (disk full, permissions) must not cost the batch its
            # results.  Restarts simply fall back to re-simulation, and
            # atomic tmp+rename writes mean no torn blob was left for
            # them to trip over.
            pass
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            # The spec rides along for debuggability (`cat` a cache entry
            # to see which job it belongs to); only the hash keys lookup.
            "spec": spec_to_dict(spec),
            "result": run_result_to_dict(result),
        }
        if elapsed is not None and elapsed > 0:
            document["elapsed"] = elapsed
            self.record_time(spec, elapsed)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(document, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        try:
            # A re-store supersedes any flat legacy copy of the entry.
            self._legacy_entry_path(spec_hash(spec)).unlink()
        except OSError:
            pass
        self.stats.stores += 1
        return path

    def _entry_files(self) -> "list[Path]":
        """Every current-schema entry file, sharded and flat legacy."""
        if not self.version_dir.is_dir():
            return []
        files = list(self.version_dir.glob("*.json"))
        files.extend(self.version_dir.glob(f"{self._SHARD_GLOB}/*.json"))
        return files

    def clear(self) -> int:
        """Delete all entries for the current schema; returns the count.

        Image-tier blobs go with their entries; recorded execution times
        (the scheduling cost model) survive.
        """
        removed = 0
        for entry in self._entry_files():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        if self.images_dir.is_dir():
            for blob in self._pointer_files() + self._blob_files():
                try:
                    blob.unlink()
                except OSError:
                    pass
        return removed

    def prune(self, specs: "Iterable[RunSpec]") -> int:
        """Delete the entries for ``specs`` (misses ignored); returns the
        number removed.  Unlike :meth:`clear`, prune targets specific
        cells, so their recorded execution times are evicted too — a
        pruned cell's next run re-records its cost.  The timing falls
        even when the entry file is already gone (a cell can have a
        recorded time with no stored result, e.g. after a concurrent
        writer's record survived this cache's earlier eviction)."""
        removed = 0
        requested_hashes = []
        for spec in specs:
            key = spec_hash(spec)
            requested_hashes.append(key)
            gone = False
            for path in (self.path_for(spec), self._legacy_entry_path(key)):
                try:
                    path.unlink()
                    gone = True
                except OSError:
                    pass
            if gone:
                removed += 1
        # One batched image drop: _drop_images ends in a full pointer
        # scan for blob GC, so per-spec calls would cost O(specs ×
        # pointers) file reads.
        self._drop_images(requested_hashes)
        self.drop_timings(requested_hashes)
        return removed

    def _prune_paths(self, paths: "Iterable[Path]") -> int:
        """Unlink entry files and evict their timings and image blobs
        (stems are hashes)."""
        removed = 0
        evicted = []
        for path in paths:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
            evicted.append(path.stem)
        self.drop_timings(evicted)
        self._drop_images(evicted)
        return removed

    def prune_older_than(self, max_age_seconds: float) -> int:
        """Evict entries whose file is older than ``max_age_seconds``.

        Age is the entry file's mtime — i.e. when the result was last
        (re-)stored, not last read.  Image blobs age out on the same
        clock (their own mtime).  Returns the number of entries removed.
        """
        if not self.version_dir.is_dir():
            self.prune_images_older_than(max_age_seconds)
            return 0
        cutoff = time.time() - max_age_seconds
        stale = []
        for entry in self._entry_files():
            try:
                if entry.stat().st_mtime < cutoff:
                    stale.append(entry)
            except OSError:
                pass
        removed = self._prune_paths(stale)
        self.prune_images_older_than(max_age_seconds)
        return removed

    def prune_to_max_entries(self, max_entries: int) -> int:
        """Evict oldest entries (by mtime) until at most ``max_entries``
        remain; returns the number removed."""
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        aged = []
        for entry in self._entry_files():
            try:
                aged.append((entry.stat().st_mtime, entry.name, entry))
            except OSError:
                pass
        if len(aged) <= max_entries:
            return 0
        aged.sort()
        n_evict = len(aged) - max_entries
        return self._prune_paths(entry for _, _, entry in aged[:n_evict])

    def total_bytes(self) -> int:
        """On-disk footprint of the current schema's entries."""
        total = 0
        for entry in self._entry_files():
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        return len(self._entry_files())
