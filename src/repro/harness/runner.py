"""The experiment runner: launch an app under a protocol, measure, checkpoint.

``launch_run`` covers every execution mode the paper's evaluation needs:

* native / 2PC / CC protocol selection,
* optional checkpoint requests at given virtual times (Figure 9),
* restart from a set of checkpoint images (restart-time measurement and
  transparency tests),
* per-run virtual-time, call-rate, and checkpoint statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..des import Gate, Simulator
from ..des.errors import DeadlockError
from ..mana import CheckpointCoordinator, CheckpointImage, CheckpointRecord, Session
from ..mana.vcomm import session_scope
from ..netmodel import ModelParams, StorageModel, Topology, make_topology
from ..scenarios import Scenario, resolve_scenario
from ..simmpi import World
from ..apps.base import AppContext, MpiApp

__all__ = ["RunResult", "launch_run", "restart_run"]


@dataclass
class RunResult:
    """Everything measured in one simulated job."""

    app: str
    protocol: str
    nprocs: int
    nnodes: int
    #: Virtual seconds from all-ranks-started to last rank finished.
    runtime: float
    per_rank: list[Any]
    coll_calls: int
    p2p_calls: int
    checkpoints: list[CheckpointRecord] = field(default_factory=list)
    #: Restart-only: modelled image-read time charged before resume.
    restart_read_time: float = 0.0
    #: Restart-only: virtual time at which the last rank finished
    #: rebuilding its lower half (the paper's "restart time").
    restart_ready_time: float = 0.0
    #: Virtual time each rank's application returned (index = rank).
    #: ``min()`` is the earliest completion — the instant the
    #: request-races-completion window opens (see
    #: ``RunSpec.checkpoint_completion_fracs``).
    rank_finish_times: list[float] = field(default_factory=list)
    sim_events: int = 0
    #: Ranks hard-killed by fault injection (``crash_at``).  A crashed
    #: run's ``per_rank`` and ``rank_finish_times`` carry ``None`` holes
    #: at the crashed (and never-finished) indices.
    crashed_ranks: list[int] = field(default_factory=list)
    #: Per-rank drain-buffer conservation counters (index = rank):
    #: messages restored into the buffer at restart, messages pulled in
    #: by this run's drain phases, messages consumed from the buffer by
    #: the application, and messages still buffered at job end.  For
    #: every rank, restored + buffered == consumed + leftover must hold
    #: (the drain-conservation oracle checks exactly this).
    drain_restored: list[int] = field(default_factory=list)
    drain_buffered: list[int] = field(default_factory=list)
    drain_consumed: list[int] = field(default_factory=list)
    drain_leftover: list[int] = field(default_factory=list)
    #: Non-empty when the protocol could not wrap the application (the
    #: paper's NA cells): the UnsupportedOperationError message.  Such a
    #: result carries no measurements.
    na_reason: str = ""

    @property
    def ok(self) -> bool:
        """True when the job actually ran (NA cells are not ok)."""
        return not self.na_reason

    @property
    def coll_rate(self) -> float:
        """Mean collective calls per second per rank (Table 1)."""
        if self.runtime <= 0:
            return 0.0
        return self.coll_calls / self.nprocs / self.runtime

    @property
    def p2p_rate(self) -> float:
        if self.runtime <= 0:
            return 0.0
        return self.p2p_calls / self.nprocs / self.runtime

    def committed_images(self, index: int = -1) -> dict[int, CheckpointImage]:
        committed = [r for r in self.checkpoints if r.committed]
        if not committed:
            raise ValueError("run committed no checkpoints")
        return committed[index].images


def launch_run(
    app_factory: Callable[[], MpiApp],
    nprocs: int,
    *,
    protocol: str = "native",
    topo: Topology | None = None,
    params: ModelParams | None = None,
    ppn: int | None = None,
    seed: int = 0,
    checkpoint_at: Sequence[float] = (),
    storage: StorageModel | None = None,
    restore_images: dict[int, CheckpointImage] | None = None,
    max_events: int | None = None,
    crash_at: dict[int, float] | None = None,
    scenario: "str | Scenario | None" = None,
) -> RunResult:
    """Run one simulated MPI job to completion and return measurements.

    Args:
        app_factory: zero-argument callable producing the app instance
            (one per rank, so per-rank state never aliases).
        nprocs: number of MPI ranks.
        protocol: ``"native"``, ``"2pc"``, or ``"cc"``.
        checkpoint_at: virtual times at which the coordinator requests a
            checkpoint (requires a non-native protocol).
        restore_images: restart from this checkpoint set instead of a
            fresh start; the modelled image-read time is charged before
            ranks resume.
        crash_at: fault injection — hard-kill ``rank`` at virtual time
            ``crash_at[rank]``.  The kill is a no-op if the rank already
            finished (racing a crash against completion is safe).  The
            surviving ranks eventually block on the corpse; that
            deadlock is the crash's expected teardown and ends the run.
        scenario: a :class:`~repro.scenarios.Scenario` (or its canonical
            string) perturbing the run — fabric choice, per-message link
            noise, straggler compute factors.  The perturbations are a
            pure function of (scenario, seed), so equal specs stay
            byte-identical across execution and dispatch backends.
    """
    scn = resolve_scenario(scenario)
    if topo is None:
        if scn is not None:
            topo = scn.make_topology(nprocs, ppn=ppn, params=params)
        else:
            topo = make_topology(nprocs, ppn=ppn, params=params)
    if scn is not None:
        topo = scn.wrap_topology(topo, seed=seed)
    if topo.nprocs != nprocs:
        raise ValueError(f"topology is for {topo.nprocs} ranks, asked for {nprocs}")
    if checkpoint_at and protocol == "native":
        raise ValueError("native runs cannot be checkpointed (no wrapper layer)")
    if crash_at:
        bad = [r for r in crash_at if not 0 <= r < nprocs]
        if bad:
            raise ValueError(f"crash_at names nonexistent rank(s) {sorted(bad)}")
        if any(t < 0 for t in crash_at.values()):
            raise ValueError("crash_at times must be >= 0")
    if restore_images is not None:
        if sorted(restore_images) != list(range(nprocs)):
            raise ValueError("restore_images must cover every rank")
        if restore_images[0].nprocs != nprocs:
            raise ValueError(
                f"images were taken on {restore_images[0].nprocs} ranks, "
                f"cannot restart on {nprocs}"
            )
        img_protocol = restore_images[0].protocol
        if img_protocol != protocol:
            raise ValueError(
                f"images were taken under {img_protocol!r}, cannot restart as {protocol!r}"
            )

    sim = Simulator(seed=seed, max_events=max_events)
    try:
        world = World(sim, topo)
        storage = storage or StorageModel()
        coordinator = None
        if protocol != "native":
            coordinator = CheckpointCoordinator(
                sim, protocol, storage=storage, nnodes=topo.nnodes
            )

        sessions: dict[int, Session] = {}
        restart_read_time = 0.0
        if restore_images is None:
            for rank in range(nprocs):
                sessions[rank] = Session(world, rank, protocol, coordinator)
        else:
            total_bytes = sum(im.declared_bytes for im in restore_images.values())
            restart_read_time = storage.read_time(total_bytes, topo.nnodes)
            for rank in range(nprocs):
                sessions[rank] = Session.from_image(
                    world, restore_images[rank], coordinator
                )
        if scn is not None:
            factors = scn.compute_factors(nprocs)
            if factors is not None:
                for rank in range(nprocs):
                    sessions[rank].compute_factor = float(factors[rank])
        for sess in sessions.values():
            sess.wire_peers(sessions)

        gate = Gate(sim, nprocs, label="mpi_init")
        procs = {}
        apps = {rank: app_factory() for rank in range(nprocs)}
        ready_times: list[float] = []
        finish_times: dict[int, float] = {}

        def make_body(rank: int) -> Callable[[], Any]:
            def body() -> Any:
                sess = sessions[rank]
                with session_scope(sess):
                    gate.arrive_and_wait()
                    if restore_images is not None:
                        # Read the image back from storage, then rebuild
                        # the lower half (fresh communicators, re-posted
                        # receives) before the application resumes.
                        sim.sleep(restart_read_time)
                        sess.rebuild_lower()
                        sess.prepare_protocol()
                        ready_times.append(sim.now())
                        if sess.finished:
                            # Checkpointed through rank completion: the
                            # rank was finished at the cut and stays
                            # finished.  It still rebuilt its lower half
                            # above — communicator creation is collective,
                            # so surviving ranks replaying shared comms
                            # need this rank in the allgather — then it
                            # re-announces completion (arming the new
                            # coordinator's proxy for future rounds) and
                            # reports the restored terminal result.
                            finish_times[rank] = sim.now()
                            sess.on_app_finished()
                            return sess.final_result
                    else:
                        sess.prepare_protocol()
                    ctx = AppContext(sess, seed=seed)
                    result = apps[rank].run(ctx)
                    # Stash the terminal result *before* announcing
                    # completion: a checkpoint racing this rank's exit
                    # snapshots it into the finished image.  The finish
                    # instant is the application's return time — not the
                    # exit of any checkpoint the announcement parks into.
                    sess.final_result = result
                    finish_times[rank] = sim.now()
                    sess.on_app_finished()
                    return result

            return body

        for rank in range(nprocs):
            proc = sim.spawn(make_body(rank), name=f"rank{rank}")
            world.register_process(proc, rank)
            procs[rank] = proc

        if coordinator is not None:
            coordinator.attach(sessions, procs)
            for t in checkpoint_at:
                sim.call_at(t, coordinator.request_checkpoint)

        crashed: set[int] = set()
        if crash_at:
            def make_crash(rank: int) -> Callable[[], None]:
                def do_crash() -> None:
                    if not sim.kill_process(procs[rank]):
                        return  # lost the race against natural completion
                    crashed.add(rank)
                    if coordinator is not None:
                        # The failure detector notices after one control
                        # latency (the same delay any rank->coordinator
                        # message would pay).
                        latency = sessions[rank].overheads.control_latency
                        sim.call_after(
                            latency, lambda: coordinator.on_rank_crashed(rank)
                        )

                return do_crash

            for rank, t in sorted(crash_at.items()):
                sim.call_at(t, make_crash(rank))

        try:
            end = sim.run()
        except DeadlockError:
            if not crashed:
                raise
            # Survivors blocked on the corpse with no pending events:
            # this is the crash's expected teardown, not a protocol bug.
            # The job ends where the simulation stopped making progress.
            end = sim.now()
        app0 = apps[0]
        ranks = range(nprocs)
        return RunResult(
            app=app0.name,
            protocol=protocol,
            nprocs=nprocs,
            nnodes=topo.nnodes,
            runtime=end,
            per_rank=[procs[r].result if procs[r].done else None for r in ranks],
            coll_calls=world.stats.total_coll(),
            p2p_calls=world.stats.total_p2p(),
            checkpoints=list(coordinator.records) if coordinator else [],
            restart_read_time=restart_read_time,
            restart_ready_time=max(ready_times) if ready_times else 0.0,
            rank_finish_times=[finish_times.get(r) for r in ranks],
            sim_events=sim.event_count,
            crashed_ranks=sorted(crashed),
            drain_restored=[sessions[r].drain_restored for r in ranks],
            drain_buffered=[sessions[r].drain_buffered for r in ranks],
            drain_consumed=[sessions[r].drain_consumed for r in ranks],
            drain_leftover=[len(sessions[r].drain_buffer) for r in ranks],
        )
    finally:
        sim.close()
        # Simulations leave reference cycles (processes <-> closures <->
        # sites holding numpy payloads); collect eagerly so sweeping
        # experiments don't accumulate multi-GB garbage between runs.
        import gc

        gc.collect()


def restart_run(
    app_factory: Callable[[], MpiApp],
    images: dict[int, CheckpointImage],
    *,
    topo: Topology | None = None,
    params: ModelParams | None = None,
    ppn: int | None = None,
    seed: int = 0,
    storage: StorageModel | None = None,
    checkpoint_at: Sequence[float] = (),
    scenario: "str | Scenario | None" = None,
) -> RunResult:
    """Restart a job from a checkpoint set (a fresh lower half, as in
    MANA: a new 'trivial' MPI job adopts the images)."""
    nprocs = len(images)
    protocol = images[0].protocol
    return launch_run(
        app_factory,
        nprocs,
        protocol=protocol,
        topo=topo,
        params=params,
        ppn=ppn,
        seed=seed,
        storage=storage,
        restore_images=images,
        checkpoint_at=checkpoint_at,
        scenario=scenario,
    )
