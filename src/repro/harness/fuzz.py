"""Always-on fault fuzzer with a persistent anomaly corpus.

``repro-mpi verify`` answers "do these N seeds pass right now?"; this
module is the open-ended version of the same question: keep drawing
adversarial :class:`~repro.harness.verify.FaultSchedule`\\ s under a
time or iteration budget, push every one through every registered
oracle, and treat *anything* surprising as an anomaly worth keeping:

* ``mismatch`` — an oracle's two derivations of the same truth disagreed
  (the classic differential verdict);
* ``deadlock`` — the schedule wedged the simulation (a genuine
  distributed deadlock, or a runaway poll loop dying at its
  ``max_events`` guard);
* ``recovery`` — a bounded-retry recovery chain exhausted its budget
  without reaching clean completion (every restart leg kept dying; see
  :mod:`repro.harness.recovery` and the ``recovery-chain`` oracle);
* ``crash`` — the oracle itself blew up (ProtocolError, SpecError, …);
* ``perf-outlier`` — the check passed but took an order of magnitude
  longer than the recorded cost model says it should (wedge-adjacent
  behaviour that a pass/fail verdict would hide).

Each anomaly is **shrunk** — the failing schedule is greedily simplified
while it keeps failing with the same anomaly class — and persisted into
an on-disk corpus as a derandomized reproduction: a JSON entry whose
``repro`` command and full schedule replay the exact check.  Entries are
content-hashed over the *minimized* schedule (plus the oracle that
flagged it), so re-finding the same anomaly on a later run dedupes
instead of growing the corpus.

The corpus directory layout::

    <corpus>/
      entries/<16-hex-key>.json   one anomaly each (schedule + verdict)
      cost_model.json             per-oracle wall-time medians

``repro-mpi fuzz`` is the CLI face; ``--replay KEY`` re-runs a stored
entry's exact (oracle, schedule) check and reports whether it still
fails.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from statistics import median
from typing import Callable, Iterable, Sequence

from ..util.hashing import stable_json_hash
from .verify import (
    ORACLES,
    FaultSchedule,
    Oracle,
    OracleReport,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "CorpusDB",
    "CorpusEntry",
    "FuzzStats",
    "replay_entry",
    "run_fuzz",
    "schedule_from_dict",
    "schedule_key",
    "schedule_to_dict",
    "shrink_schedule",
]

#: Corpus entry format version (bump on incompatible layout changes).
CORPUS_SCHEMA = 1

#: A passing check this many times slower than the oracle's recorded
#: median is a ``perf-outlier`` anomaly...
PERF_OUTLIER_FACTOR = 10.0
#: ...but never flag a check faster than this absolute floor (a 0.05 s
#: median would otherwise make 0.6 s an "outlier" on a loaded machine).
PERF_OUTLIER_FLOOR = 2.0
#: Don't trust a median of fewer samples than this.
PERF_MIN_SAMPLES = 8

#: Shrinking re-checks are the expensive part; bound them per anomaly.
SHRINK_CHECK_BUDGET = 48


# --------------------------------------------------------------------- #
# Schedule serialization
# --------------------------------------------------------------------- #
# schedule_to_dict / schedule_from_dict moved to repro.harness.verify
# (where FaultSchedule lives, and where the dispatch layer's check-job
# wire format needs them); re-exported here for compatibility.


def schedule_key(schedule: FaultSchedule, oracle: str) -> str:
    """Content hash identifying one (oracle, minimized schedule) anomaly."""
    return stable_json_hash(
        {"oracle": oracle, "schedule": schedule_to_dict(schedule)}
    )


# --------------------------------------------------------------------- #
# Corpus
# --------------------------------------------------------------------- #

@dataclass
class CorpusEntry:
    """One persisted anomaly: a derandomized, minimized reproduction."""

    key: str
    oracle: str
    seed: int
    kind: str
    detail: str
    #: One-paste replay of the *original* failing check.
    repro: str
    #: The minimized schedule (what the key hashes).
    schedule: dict
    #: The schedule as originally drawn, before shrinking.
    shrunk_from: dict
    #: Accepted shrink steps between the two.
    shrink_steps: int
    found_at: float

    def as_dict(self) -> dict:
        out = asdict(self)
        out["schema"] = CORPUS_SCHEMA
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        fields = {k: data[k] for k in (
            "key", "oracle", "seed", "kind", "detail", "repro",
            "schedule", "shrunk_from", "shrink_steps", "found_at",
        )}
        return cls(**fields)


class CorpusDB:
    """Content-addressed on-disk anomaly corpus.

    Writes are atomic and collision-safe under concurrency (a uniquely
    named tempfile per writer, then an atomic replace): parallel fuzz
    workers — or independent fuzz processes — sharing one corpus
    directory can race on the same key and both land a well-formed
    entry, with the content-hashed key guaranteeing both wrote the same
    bytes.
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        self.entries_dir.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.entries_dir / f"{key}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.entries_dir.glob("*.json"))

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> "list[str]":
        return sorted(p.stem for p in self.entries_dir.glob("*.json"))

    def _write_atomic(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def add(self, entry: CorpusEntry) -> bool:
        """Persist ``entry``; returns False when the key already exists
        (the same minimized anomaly was found before)."""
        path = self._path(entry.key)
        if path.exists():
            return False
        self._write_atomic(
            path, json.dumps(entry.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        return True

    def load(self, key: str) -> CorpusEntry:
        path = self._path(key)
        if not path.exists():
            raise KeyError(
                f"no corpus entry {key!r} under {self.entries_dir} "
                f"(have: {', '.join(self.keys()) or 'none'})"
            )
        return CorpusEntry.from_dict(json.loads(path.read_text()))

    def entries(self) -> "list[CorpusEntry]":
        return [self.load(key) for key in self.keys()]

    # -- cost model ----------------------------------------------------- #

    def load_cost_model(self) -> "dict[str, list[float]]":
        """Recorded per-oracle check durations (rolling tail)."""
        path = self.root / "cost_model.json"
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}
        return {
            str(k): [float(x) for x in v]
            for k, v in data.items()
            if isinstance(v, list)
        }

    def save_cost_model(self, model: "dict[str, list[float]]") -> None:
        # Keep a bounded tail per oracle: recent machine speed is the
        # model, not the all-time history.
        trimmed = {k: v[-64:] for k, v in sorted(model.items())}
        self._write_atomic(
            self.root / "cost_model.json",
            json.dumps(trimmed, indent=2, sort_keys=True) + "\n",
        )


# --------------------------------------------------------------------- #
# Shrinking
# --------------------------------------------------------------------- #

def _shrink_candidates(s: FaultSchedule) -> "Iterable[FaultSchedule]":
    """Strictly-simpler one-step variants, biggest simplification first.

    Every candidate must remain a *valid* schedule (spec validation
    would reject e.g. a crash rank outside the shrunken world)."""
    if s.scenario is not None:
        # A scenario perturbs every leg of the run; dropping it is the
        # single biggest simplification when the failure is scenario-free.
        yield replace(s, scenario=None)
    if s.recovery_crash_fracs:
        # Drop the whole storm first, then one hop at a time (last hop
        # first — earlier hops are likelier to carry the failure).
        yield replace(s, recovery_crash_fracs=())
        if len(s.recovery_crash_fracs) > 1:
            yield replace(
                s, recovery_crash_fracs=s.recovery_crash_fracs[:-1]
            )
    if s.crash_fracs:
        yield replace(s, crash_fracs=())
    if s.mid_fracs:
        yield replace(s, mid_fracs=())
    if len(s.completion_fracs) > 1:
        yield replace(s, completion_fracs=s.completion_fracs[:1])
    if s.restart_depth > 1:
        yield replace(s, restart_depth=1)
    if s.restart_ckpt > 0:
        yield replace(s, restart_ckpt=0)
    if s.nprocs > 3:
        nprocs = s.nprocs - 1
        # Clamp crash ranks into the smaller world (dropping collisions)
        # rather than dropping the events — losing the crash usually
        # loses the failure the shrink is trying to preserve.
        crash: dict[int, float] = {}
        for r, f in s.crash_fracs:
            crash.setdefault(min(r, nprocs - 1), f)
        hops = []
        for hop in s.recovery_crash_fracs:
            clamped: dict[int, float] = {}
            for r, f in hop:
                clamped.setdefault(min(r, nprocs - 1), f)
            hops.append(tuple(sorted(clamped.items())))
        yield replace(
            s,
            nprocs=nprocs,
            leavers=min(s.leavers, nprocs - 1),
            crash_fracs=tuple(sorted(crash.items())),
            recovery_crash_fracs=tuple(hops),
        )
    if any(r > 0 for r, _f in s.crash_fracs) and len(s.crash_fracs) == 1:
        ((_r, f),) = s.crash_fracs
        yield replace(s, crash_fracs=((0, f),))
    if s.niters > 4:
        niters = max(4, s.niters - 4)
        yield replace(s, niters=niters, shared=min(s.shared, niters))
    if s.shared > 1:
        yield replace(s, shared=s.shared - 1)
    if s.leavers > 1:
        yield replace(s, leavers=s.leavers - 1)
    # Round awkward fractions to one decimal (more readable repros).
    rounded = tuple(round(f, 1) for f in s.completion_fracs)
    if rounded != s.completion_fracs and all(f > 0 for f in rounded):
        yield replace(s, completion_fracs=rounded)
    crash_rounded = tuple((r, round(f, 1)) for r, f in s.crash_fracs)
    if crash_rounded != s.crash_fracs and all(f > 0 for _r, f in crash_rounded):
        yield replace(s, crash_fracs=crash_rounded)


def shrink_schedule(
    oracle: Oracle,
    schedule: FaultSchedule,
    kind: str,
    *,
    check_budget: int = SHRINK_CHECK_BUDGET,
) -> "tuple[FaultSchedule, int]":
    """Greedily simplify a failing schedule while it keeps failing.

    A candidate is accepted when re-checking it still fails with the
    same anomaly ``kind`` (a shrink that turns a mismatch into a crash
    found a *different* bug — keep the original).  Returns the minimized
    schedule and the number of accepted steps; at most ``check_budget``
    re-checks are spent, so shrinking is bounded even for slow oracles.
    """
    current = schedule
    steps = 0
    checks = 0
    progress = True
    while progress and checks < check_budget:
        progress = False
        for candidate in _shrink_candidates(current):
            if checks >= check_budget:
                break
            checks += 1
            report = oracle.check_schedule(candidate)
            if not report.ok and report.kind == kind:
                current = candidate
                steps += 1
                progress = True
                break  # restart from the biggest simplification
    return current, steps


# --------------------------------------------------------------------- #
# The fuzz loop
# --------------------------------------------------------------------- #

@dataclass
class FuzzStats:
    """One fuzz run's summary."""

    iterations: int = 0
    checks: int = 0
    anomalies: "list[CorpusEntry]" = field(default_factory=list)
    new_entries: int = 0
    duplicates: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.anomalies


def _perf_threshold(durations: "list[float]") -> "float | None":
    if len(durations) < PERF_MIN_SAMPLES:
        return None
    return max(PERF_OUTLIER_FACTOR * median(durations), PERF_OUTLIER_FLOOR)


def run_fuzz(
    corpus: CorpusDB,
    *,
    iters: "int | None" = None,
    budget: "float | None" = None,
    base_seed: int = 0,
    oracles: "Sequence[str] | None" = None,
    shrink: bool = True,
    progress: "Callable[[str], None] | None" = None,
    clock: Callable[[], float] = time.monotonic,
    jobs: int = 1,
    dispatch: "str | None" = None,
    service: "str | None" = None,
) -> FuzzStats:
    """Draw schedules and oracle-check them until the budget runs out.

    One *iteration* is one drawn seed through every selected oracle.
    ``iters`` and ``budget`` (seconds) can be combined; whichever is
    exhausted first stops the loop (at an iteration boundary, so every
    drawn schedule gets the full oracle battery).  Every anomaly is
    shrunk (unless ``shrink=False``), deduplicated against the corpus,
    and recorded in the returned stats whether new or duplicate.

    ``jobs > 1`` fans the checks of ``jobs`` iterations at a time
    through the job-dispatch seam (:mod:`repro.harness.dispatch`;
    ``dispatch``/``service`` select the backend, so a fuzz run can
    saturate a local pool *or* an experiment-service fleet).  Anomaly
    detection, shrinking, corpus writes, and the cost model stay in the
    parent and process results in draw order, so the corpus and stats
    are independent of completion order; the budget is checked at block
    boundaries, and parallel check durations are worker-measured.
    """
    if iters is None and budget is None:
        raise ValueError("give iters, budget, or both")
    names = list(oracles) if oracles is not None else sorted(ORACLES)
    for name in names:
        if name not in ORACLES:
            raise KeyError(
                f"unknown oracle {name!r}; expected one of {sorted(ORACLES)}"
            )

    from .dispatch import (
        DispatchConfig,
        create_dispatch,
        resolve_dispatch,
        resolve_service_addr,
    )

    resolved = resolve_dispatch(dispatch)
    use_seam = resolved == "service" or jobs > 1

    cost_model = corpus.load_cost_model()
    stats = FuzzStats()
    started = clock()
    say = progress or (lambda _msg: None)

    def record(
        report: OracleReport, schedule: FaultSchedule, kind: str, detail: str
    ) -> None:
        oracle = ORACLES[report.oracle]
        minimized, steps = (
            shrink_schedule(oracle, schedule, kind)
            if shrink and kind != "perf-outlier"
            else (schedule, 0)
        )
        entry = CorpusEntry(
            key=schedule_key(minimized, report.oracle),
            oracle=report.oracle,
            seed=report.seed,
            kind=kind,
            detail=detail,
            repro=report.repro,
            schedule=schedule_to_dict(minimized),
            shrunk_from=schedule_to_dict(schedule),
            shrink_steps=steps,
            found_at=time.time(),
        )
        stats.anomalies.append(entry)
        if corpus.add(entry):
            stats.new_entries += 1
            say(f"NEW {kind} anomaly {entry.key} ({report.oracle} "
                f"seed={report.seed}, {steps} shrink step(s)): {detail}")
        else:
            stats.duplicates += 1
            say(f"duplicate {kind} anomaly {entry.key} ({report.oracle} "
                f"seed={report.seed})")

    def process(name: str, schedule: FaultSchedule,
                report: OracleReport, dur: float) -> None:
        stats.checks += 1
        if not report.ok:
            record(report, schedule, report.kind, report.detail)
        else:
            threshold = _perf_threshold(cost_model.get(name, []))
            if threshold is not None and dur > threshold:
                record(
                    report,
                    schedule,
                    "perf-outlier",
                    f"check took {dur:.2f}s against a recorded median "
                    f"of {median(cost_model[name]):.2f}s "
                    f"(threshold {threshold:.2f}s)",
                )
            else:
                # Only healthy checks feed the cost model: a wedged
                # check must not drag the median up until its own
                # successors stop looking anomalous.
                cost_model.setdefault(name, []).append(dur)

    backend = None
    if use_seam:
        backend = create_dispatch(
            resolved,
            DispatchConfig(
                jobs=jobs,
                service_addr=(
                    resolve_service_addr(service)
                    if resolved == "service" else None
                ),
            ),
        )

    iteration = 0
    try:
        while True:
            if iters is not None and iteration >= iters:
                break
            if budget is not None and clock() - started >= budget:
                break
            block = 1
            if use_seam:
                block = max(1, jobs)
                if iters is not None:
                    block = min(block, iters - iteration)
            seeds = [base_seed + iteration + i for i in range(block)]
            schedules = [FaultSchedule.draw(seed) for seed in seeds]
            if backend is None:
                for name in names:
                    t0 = clock()
                    report = ORACLES[name].check_schedule(schedules[0])
                    process(name, schedules[0], report, clock() - t0)
            else:
                handles = [
                    (name, schedule,
                     backend.submit_check(name, schedule_to_dict(schedule)))
                    for schedule in schedules
                    for name in names
                ]
                # Draw order, not completion order: the corpus and the
                # cost model must not depend on worker timing.
                for name, schedule, handle in handles:
                    value = handle.result()
                    report = OracleReport(**value["report"])
                    process(name, schedule, report, value["duration"])
            for seed in seeds:
                iteration += 1
                stats.iterations = iteration
                say(f"iter {iteration}: seed {seed}, "
                    f"{len(stats.anomalies)} anomal"
                    f"{'y' if len(stats.anomalies) == 1 else 'ies'} so far")
    finally:
        if backend is not None:
            backend.close()

    stats.elapsed = clock() - started
    corpus.save_cost_model(cost_model)
    return stats


def replay_entry(corpus: CorpusDB, key: str) -> OracleReport:
    """Re-run a stored anomaly's exact (oracle, schedule) check.

    Returns the fresh report: a still-failing replay confirms the
    anomaly reproduces; a passing one means the underlying bug is gone
    (or was environment-dependent — perf outliers usually are).
    """
    entry = corpus.load(key)
    oracle = ORACLES.get(entry.oracle)
    if oracle is None:
        raise KeyError(
            f"corpus entry {key} names unknown oracle {entry.oracle!r}"
        )
    return oracle.check_schedule(schedule_from_dict(entry.schedule))
