"""Deterministic discrete-event simulation kernel with thread-backed processes.

The kernel lets ordinary *blocking-style* Python code (such as an MPI
application calling ``comm.recv(...)``) run under a virtual clock.  Each
simulated process is a real OS thread, but **exactly one thread runs at a
time**: the scheduler hands a token to the process whose wake-up event is
next in virtual time, and the process hands the token back whenever it
performs a kernel call (``sleep``, blocking on a primitive, exiting).
Because every hand-off is mediated by the event heap, and heap entries are
ordered by ``(time, sequence_number)``, execution is fully deterministic
for a fixed program — no dependence on OS thread scheduling.

This is the substrate on which ``repro.simmpi`` (the simulated MPI
library) and ``repro.mana`` (the checkpointing layer) are built.

Typical usage::

    sim = Simulator(seed=42)
    def worker():
        sim.sleep(1.5)
        print("virtual time is", sim.now())
    sim.spawn(worker, name="w0")
    sim.run()
    sim.close()
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, Iterable

import numpy as np

from .errors import (
    DeadlockError,
    NotInProcessError,
    ProcessFailed,
    ProcessKilled,
    SchedulingError,
    SimClosedError,
)
from .trace import Tracer, TraceRecord

__all__ = ["Simulator", "SimProcess", "Timer", "Interrupted", "INTERRUPTED"]

_tls = threading.local()

# Process lifecycle states.
_NEW = "new"
_READY = "ready"  # has a pending resume event in the heap
_RUNNING = "running"
_BLOCKED = "blocked"  # waiting for an external wake (no heap entry)
_DONE = "done"
_FAILED = "failed"
_KILLED = "killed"

#: Default stack size for simulated process threads.  Simulated ranks are
#: shallow (application loop + wrapper + kernel), so a small stack keeps
#: memory bounded when simulating hundreds of ranks.
_STACK_SIZE = 512 * 1024


class Interrupted:
    """Sentinel type returned by interruptible sleeps that were cut short."""

    _instance: "Interrupted | None" = None

    def __new__(cls) -> "Interrupted":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "<INTERRUPTED>"


#: Singleton returned by :meth:`Simulator.sleep` when interrupted.
INTERRUPTED = Interrupted()


class Timer:
    """Cancellable handle for a scheduled callback or process resume."""

    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time: float, seq: int, action: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimProcess:
    """A simulated process: a thread that runs only when scheduled.

    Do not instantiate directly; use :meth:`Simulator.spawn`.
    """

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: str,
    ):
        self.sim = sim
        self.name = name
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.state = _NEW
        self.result: Any = None
        self.exception: BaseException | None = None
        #: What the process is currently blocked on (for deadlock reports).
        self.blocked_on: str = ""
        #: Set while the process holds an interruptible sleep.
        self._sleep_timer: Timer | None = None
        self._interrupted = False
        self._killed = False
        self._resume = threading.Semaphore(0)
        self._joiners: list[SimProcess] = []
        self._waiters_on_exit: list[Callable[[], None]] = []
        old = threading.stack_size()
        try:
            threading.stack_size(_STACK_SIZE)
        except (ValueError, RuntimeError):  # pragma: no cover - platform dependent
            pass
        try:
            self._thread = threading.Thread(
                target=self._bootstrap, name=f"sim:{name}", daemon=True
            )
        finally:
            try:
                threading.stack_size(old)
            except (ValueError, RuntimeError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def alive(self) -> bool:
        """True while the process has not finished, failed, or been killed."""
        return self.state in (_NEW, _READY, _RUNNING, _BLOCKED)

    @property
    def done(self) -> bool:
        return self.state == _DONE

    @property
    def failed(self) -> bool:
        return self.state == _FAILED

    def __repr__(self) -> str:
        return f"<SimProcess {self.name} state={self.state}>"

    # ------------------------------------------------------------------ #
    # Thread body
    # ------------------------------------------------------------------ #

    def _bootstrap(self) -> None:
        _tls.proc = self
        self._resume.acquire()
        if self._killed:
            self.state = _KILLED
            self.sim._token.release()
            return
        self.state = _RUNNING
        try:
            self.result = self.fn(*self.args, **self.kwargs)
        except ProcessKilled:
            self.state = _KILLED
            self.sim._token.release()
            return
        except BaseException as exc:  # noqa: BLE001 - reported to scheduler
            self.state = _FAILED
            self.exception = exc
            self.sim._failed.append(self)
            self.sim._trace_emit("fail", self.name, repr(exc))
        else:
            self.state = _DONE
            self.sim._trace_emit("exit", self.name, "")
        for waker in self._waiters_on_exit:
            waker()
        self._waiters_on_exit.clear()
        self.sim._token.release()

    # Called from *inside* the process thread to give control back to the
    # scheduler and wait to be resumed.
    def _yield_and_wait(self) -> None:
        self.sim._token.release()
        self._resume.acquire()
        if self._killed:
            raise ProcessKilled()
        self.state = _RUNNING

    # ------------------------------------------------------------------ #
    # Cross-process operations (must run while holding the token, i.e.
    # from another process, a timer callback, or the scheduler itself)
    # ------------------------------------------------------------------ #

    def interrupt(self) -> bool:
        """Interrupt this process's interruptible sleep, if any.

        Returns True if the process was sleeping interruptibly and has been
        scheduled to wake immediately; False otherwise (no-op).
        """
        if self._sleep_timer is not None and not self._sleep_timer.cancelled:
            self._sleep_timer.cancel()
            self._interrupted = True
            self.sim._make_ready(self, detail="interrupt")
            self.sim._trace_emit("interrupt", self.name, "")
            return True
        return False

    def on_exit(self, waker: Callable[[], None]) -> None:
        """Register a callback invoked (in scheduler context) when this
        process terminates for any reason.  If already terminated the
        callback runs immediately."""
        if not self.alive:
            waker()
        else:
            self._waiters_on_exit.append(waker)


class Simulator:
    """The event loop: a heap of timed actions plus the process registry.

    Args:
        seed: master seed for :meth:`rng` streams.  All randomness in a
            simulation should derive from these streams so that runs are
            reproducible.
        tracer: optional :class:`~repro.des.trace.Tracer` for debugging.
        max_events: safety valve — :meth:`run` raises ``SchedulingError``
            after this many events (guards against runaway protocol loops
            in tests).
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        tracer: Tracer | None = None,
        max_events: int | None = None,
    ):
        self._heap: list[Timer] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processes: list[SimProcess] = []
        self._failed: list[SimProcess] = []
        self._current: SimProcess | None = None
        self._token = threading.Semaphore(0)
        self._running = False
        self._closed = False
        self._seed = seed
        self._seedseq = np.random.SeedSequence(seed)
        self._rng_cache: dict[str, np.random.Generator] = {}
        self._tracer = tracer
        self._max_events = max_events
        self._event_count = 0

    # ------------------------------------------------------------------ #
    # Clock and RNG
    # ------------------------------------------------------------------ #

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        return self._seed

    def rng(self, name: str) -> np.random.Generator:
        """A named, deterministic random stream derived from the master seed.

        The same ``name`` always yields the same stream for a given
        simulator seed, independent of creation order.
        """
        gen = self._rng_cache.get(name)
        if gen is None:
            import zlib

            # zlib.crc32 (not hash()): Python string hashing is salted
            # per-interpreter, which would break run-to-run determinism.
            child = np.random.SeedSequence(
                entropy=self._seedseq.entropy,
                spawn_key=(zlib.crc32(name.encode()),),
            )
            gen = np.random.default_rng(child)
            self._rng_cache[name] = gen
        return gen

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #

    def call_at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn()`` to run in scheduler context at virtual ``time``."""
        self._check_open()
        if time < self._now - 1e-15:
            raise SchedulingError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        timer = Timer(max(time, self._now), next(self._seq), fn)
        heapq.heappush(self._heap, timer)
        return timer

    def call_after(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn()`` to run ``delay`` seconds of virtual time from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn)

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str | None = None,
        start_at: float | None = None,
        **kwargs: Any,
    ) -> SimProcess:
        """Create a simulated process and schedule it to start.

        Args:
            fn: the process body; runs in its own thread under the virtual
                clock.  Its return value is stored on ``proc.result``.
            name: diagnostic name (auto-generated if omitted).
            start_at: virtual time at which the process begins (default:
                now).
        """
        self._check_open()
        if name is None:
            name = f"proc-{len(self._processes)}"
        proc = SimProcess(self, fn, args, kwargs, name)
        self._processes.append(proc)
        proc.state = _READY
        start = self._now if start_at is None else start_at
        self.call_at(start, lambda: self._resume_process(proc))
        self._trace_emit("spawn", name, f"start_at={start}")
        proc._thread.start()
        return proc

    # ------------------------------------------------------------------ #
    # Process-side operations (must be called from inside a process)
    # ------------------------------------------------------------------ #

    def current_process(self) -> SimProcess:
        """The process the calling thread is running as."""
        proc = getattr(_tls, "proc", None)
        if proc is None or proc.sim is not self:
            raise NotInProcessError(
                "this operation must be called from inside a simulated process"
            )
        return proc

    def sleep(self, delay: float, *, interruptible: bool = False) -> Any:
        """Advance this process's virtual time by ``delay`` seconds.

        With ``interruptible=True``, another process may cut the sleep
        short via :meth:`SimProcess.interrupt`; in that case the return
        value is :data:`INTERRUPTED`, otherwise ``None``.  The caller can
        compute the remaining time from :meth:`now`.
        """
        proc = self.current_process()
        if delay < 0:
            raise SchedulingError(f"negative sleep {delay}")
        timer = self.call_after(delay, lambda: self._make_ready(proc, detail="wake"))
        if interruptible:
            proc._sleep_timer = timer
        proc.state = _BLOCKED
        proc.blocked_on = f"sleep({delay:g})"
        self._trace_emit("sleep", proc.name, f"{delay:g}")
        proc._yield_and_wait()
        proc._sleep_timer = None
        proc.blocked_on = ""
        if proc._interrupted:
            proc._interrupted = False
            return INTERRUPTED
        return None

    def block(self, reason: str = "blocked") -> None:
        """Block the calling process until :meth:`wake` is called on it.

        This is the low-level primitive used by the synchronization
        objects in :mod:`repro.des.sync`; application code should prefer
        those.
        """
        proc = self.current_process()
        proc.state = _BLOCKED
        proc.blocked_on = reason
        self._trace_emit("block", proc.name, reason)
        proc._yield_and_wait()
        proc.blocked_on = ""

    def wake(self, proc: SimProcess) -> None:
        """Schedule ``proc`` (blocked via :meth:`block`) to resume now."""
        self._make_ready(proc, detail="wake")

    def checkpoint_yield(self) -> None:
        """Yield to the scheduler for zero virtual time.

        Lets same-timestamp events (e.g. a pending message delivery) run
        before the caller proceeds.  Useful in polling loops.
        """
        self.sleep(0.0)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self, until: float | None = None) -> float:
        """Run events until the heap is exhausted (or virtual time ``until``).

        Returns the final virtual time.  Raises:
            * :class:`ProcessFailed` if any process raised an exception.
            * :class:`DeadlockError` if live processes remain blocked with
              no pending events (a genuine distributed deadlock).
        """
        self._check_open()
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self._running = True
        try:
            while self._heap:
                timer = heapq.heappop(self._heap)
                if timer.cancelled:
                    continue
                if until is not None and timer.time > until:
                    heapq.heappush(self._heap, timer)
                    self._now = until
                    return self._now
                self._event_count += 1
                if self._max_events is not None and self._event_count > self._max_events:
                    raise SchedulingError(
                        f"exceeded max_events={self._max_events}; "
                        "possible runaway protocol loop"
                    )
                self._now = timer.time
                timer.action()
                self._raise_if_failed()
            blocked = [p for p in self._processes if p.alive]
            if blocked:
                lines = ", ".join(f"{p.name}<-[{p.blocked_on or p.state}]" for p in blocked)
                raise DeadlockError(
                    f"no pending events at t={self._now:g} but "
                    f"{len(blocked)} process(es) blocked: {lines}"
                )
            return self._now
        finally:
            self._running = False

    def _raise_if_failed(self) -> None:
        if self._failed:
            p = self._failed.pop(0)
            exc = p.exception
            assert exc is not None
            p.state = _KILLED  # don't re-raise on the next event
            raise ProcessFailed(p.name, exc) from exc

    # ------------------------------------------------------------------ #
    # Internal transfer of control
    # ------------------------------------------------------------------ #

    def _resume_process(self, proc: SimProcess) -> None:
        if not proc.alive:
            return
        previous = self._current
        self._current = proc
        self._trace_emit("start" if proc.state == _READY else "wake", proc.name, "")
        proc._resume.release()
        self._token.acquire()
        self._current = previous

    def _make_ready(self, proc: SimProcess, *, detail: str = "") -> Timer:
        if not proc.alive:
            raise SchedulingError(f"cannot wake non-live process {proc!r}")
        proc.state = _READY
        return self.call_at(self._now, lambda: self._resume_process(proc))

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Kill all live processes and join their threads.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for proc in self._processes:
            if proc.alive and proc._thread.is_alive():
                proc._killed = True
                self._trace_emit("kill", proc.name, "")
                proc._resume.release()
                self._token.acquire()
        for proc in self._processes:
            if proc._thread.is_alive():
                proc._thread.join(timeout=5.0)

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SimClosedError("simulator is closed")

    # ------------------------------------------------------------------ #
    # Introspection / tracing
    # ------------------------------------------------------------------ #

    @property
    def processes(self) -> Iterable[SimProcess]:
        return tuple(self._processes)

    @property
    def event_count(self) -> int:
        """Number of events executed so far (a determinism fingerprint)."""
        return self._event_count

    def _trace_emit(self, kind: str, process: str, detail: str) -> None:
        if self._tracer is not None:
            self._tracer.emit(TraceRecord(self._now, kind, process, detail))
