"""Deterministic discrete-event simulation kernel with thread-backed processes.

The kernel lets ordinary *blocking-style* Python code (such as an MPI
application calling ``comm.recv(...)``) run under a virtual clock.  Each
simulated process is a real OS thread, but **exactly one thread runs at a
time**: the scheduler hands a token to the process whose wake-up event is
next in virtual time, and the process hands the token back whenever it
performs a kernel call (``sleep``, blocking on a primitive, exiting).
Because every hand-off is mediated by the event queue, and entries are
ordered by ``(time, sequence_number)``, execution is fully deterministic
for a fixed program — no dependence on OS thread scheduling.

Hot-path design (every simulated second is millions of these):

* **Pure-callback events run inline** in the scheduler loop — timers,
  request completions, and coordinator callbacks never touch a thread.
  Only resuming a simulated *process* costs a thread handoff, and that
  handoff uses raw ``threading.Lock`` pairs (C-level acquire/release)
  rather than the Python-implemented ``Semaphore``.
* **Zero-delay events bypass the heap.**  Events scheduled at the
  current instant (process resumes, completion wakeups, mailbox
  deliveries) go to a FIFO *now-queue*; the run loop merges the two
  sources by ``(time, seq)`` so global ordering — and therefore
  ``event_count`` — is identical to a single-heap kernel.
* **Event entries are ``(time, seq, timer_or_None, action)`` tuples**,
  so heap sifting compares floats/ints in C instead of calling
  ``Timer.__lt__``, and fire-and-forget events (:meth:`Simulator.defer`
  / :meth:`Simulator.defer_at`, non-interruptible sleeps, resumes)
  allocate no Timer handle at all.
* **Cancelled timers are dropped lazily** when popped, never by
  re-heapifying.
* **Tracing is free when off**: ``_trace_emit`` defers ``%``-style
  formatting (or a callable detail) until a tracer is attached, and hot
  call sites skip the call entirely when ``tracer is None``.
* **Consecutive same-time resumes of one process coalesce** into a
  single resume event (a double wake at the same instant was previously
  a latent spurious-wakeup hazard).

This is the substrate on which ``repro.simmpi`` (the simulated MPI
library) and ``repro.mana`` (the checkpointing layer) are built.

Typical usage::

    sim = Simulator(seed=42)
    def worker():
        sim.sleep(1.5)
        print("virtual time is", sim.now())
    sim.spawn(worker, name="w0")
    sim.run()
    sim.close()
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Iterable

import numpy as np

from .errors import (
    DeadlockError,
    NotInProcessError,
    ProcessFailed,
    ProcessKilled,
    SchedulingError,
    SimClosedError,
)
from .trace import Tracer, TraceRecord

__all__ = ["Simulator", "SimProcess", "Timer", "Interrupted", "INTERRUPTED"]

_tls = threading.local()

# Process lifecycle states.
_NEW = "new"
_READY = "ready"  # has a pending resume event in the queue
_RUNNING = "running"
_BLOCKED = "blocked"  # waiting for an external wake (no queue entry)
_DONE = "done"
_FAILED = "failed"
_KILLED = "killed"

#: Default stack size for simulated process threads.  Simulated ranks are
#: shallow (application loop + wrapper + kernel), so a small stack keeps
#: memory bounded when simulating hundreds of ranks.
_STACK_SIZE = 512 * 1024


class Interrupted:
    """Sentinel type returned by interruptible sleeps that were cut short."""

    _instance: "Interrupted | None" = None

    def __new__(cls) -> "Interrupted":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "<INTERRUPTED>"


#: Singleton returned by :meth:`Simulator.sleep` when interrupted.
INTERRUPTED = Interrupted()


class Timer:
    """Cancellable handle for a scheduled callback or process resume."""

    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time: float, seq: int, action: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimProcess:
    """A simulated process: a thread that runs only when scheduled.

    Do not instantiate directly; use :meth:`Simulator.spawn`.
    """

    __slots__ = (
        "sim",
        "name",
        "fn",
        "args",
        "kwargs",
        "state",
        "result",
        "exception",
        "blocked_on",
        "_sleep_timer",
        "_interrupted",
        "_killed",
        "_resume",
        "_joiners",
        "_waiters_on_exit",
        "_thread",
        "_resume_at",
        "_resume_action",
        "_wake_action",
    )

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: str,
    ):
        self.sim = sim
        self.name = name
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.state = _NEW
        self.result: Any = None
        self.exception: BaseException | None = None
        #: What the process is currently blocked on (for deadlock reports).
        self.blocked_on: str = ""
        #: Set while the process holds an interruptible sleep.
        self._sleep_timer: Timer | None = None
        self._interrupted = False
        self._killed = False
        # Raw Lock (not Semaphore): acquire/release are C-level, and the
        # kernel's strict one-runner-at-a-time handoff never needs counts.
        self._resume = threading.Lock()
        self._resume.acquire()
        self._joiners: list[SimProcess] = []
        self._waiters_on_exit: list[Callable[[], None]] = []
        #: Virtual time of the pending resume event (-1.0 when none),
        #: for same-time coalescing.
        self._resume_at = -1.0
        # Preallocated hot-path callbacks: one closure per process for
        # its lifetime instead of one per resume/sleep.
        self._resume_action = lambda: sim._resume_process(self)
        self._wake_action = lambda: sim._make_ready(self)
        old = threading.stack_size()
        try:
            threading.stack_size(_STACK_SIZE)
        except (ValueError, RuntimeError):  # pragma: no cover - platform dependent
            pass
        try:
            self._thread = threading.Thread(
                target=self._bootstrap, name=f"sim:{name}", daemon=True
            )
        finally:
            try:
                threading.stack_size(old)
            except (ValueError, RuntimeError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def alive(self) -> bool:
        """True while the process has not finished, failed, or been killed."""
        return self.state in (_NEW, _READY, _RUNNING, _BLOCKED)

    @property
    def done(self) -> bool:
        return self.state == _DONE

    @property
    def failed(self) -> bool:
        return self.state == _FAILED

    def __repr__(self) -> str:
        return f"<SimProcess {self.name} state={self.state}>"

    # ------------------------------------------------------------------ #
    # Thread body
    # ------------------------------------------------------------------ #

    def _bootstrap(self) -> None:
        _tls.proc = self
        self._resume.acquire()
        if self._killed:
            self.state = _KILLED
            self.sim._token.release()
            return
        self.state = _RUNNING
        try:
            self.result = self.fn(*self.args, **self.kwargs)
        except ProcessKilled:
            self.state = _KILLED
            self.sim._token.release()
            return
        except BaseException as exc:  # noqa: BLE001 - reported to scheduler
            self.state = _FAILED
            self.exception = exc
            self.sim._failed.append(self)
            self.sim._trace_emit("fail", self.name, repr(exc))
        else:
            self.state = _DONE
            self.sim._trace_emit("exit", self.name, "")
        for waker in self._waiters_on_exit:
            waker()
        self._waiters_on_exit.clear()
        self.sim._token.release()

    # Called from *inside* the process thread to give control back to the
    # scheduler and wait to be resumed.
    def _yield_and_wait(self) -> None:
        self.sim._token.release()
        self._resume.acquire()
        if self._killed:
            raise ProcessKilled()
        self.state = _RUNNING

    # ------------------------------------------------------------------ #
    # Cross-process operations (must run while holding the token, i.e.
    # from another process, a timer callback, or the scheduler itself)
    # ------------------------------------------------------------------ #

    def interrupt(self) -> bool:
        """Interrupt this process's interruptible sleep, if any.

        Returns True if the process was sleeping interruptibly and has been
        scheduled to wake immediately; False otherwise (no-op).
        """
        if self._sleep_timer is not None and not self._sleep_timer.cancelled:
            self._sleep_timer.cancel()
            self._interrupted = True
            self.sim._make_ready(self)
            self.sim._trace_emit("interrupt", self.name, "")
            return True
        return False

    def on_exit(self, waker: Callable[[], None]) -> None:
        """Register a callback invoked (in scheduler context) when this
        process terminates for any reason.  If already terminated the
        callback runs immediately."""
        if not self.alive:
            waker()
        else:
            self._waiters_on_exit.append(waker)


class Simulator:
    """The event loop: a queue of timed actions plus the process registry.

    Args:
        seed: master seed for :meth:`rng` streams.  All randomness in a
            simulation should derive from these streams so that runs are
            reproducible.
        tracer: optional :class:`~repro.des.trace.Tracer` for debugging.
        max_events: safety valve — :meth:`run` raises ``SchedulingError``
            after this many events (guards against runaway protocol loops
            in tests).
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        tracer: Tracer | None = None,
        max_events: int | None = None,
    ):
        #: Future events: ``(time, seq, timer_or_None, action)`` tuples
        #: so heap sifting compares in C without calling back into
        #: Python; the Timer slot is None for non-cancellable events.
        self._heap: list[tuple[float, int, "Timer | None", Callable[[], None]]] = []
        #: Front-slot cache: the earliest *future* event, kept out of the
        #: heap.  Invariant: when set, it precedes every heap entry in
        #: ``(time, seq)`` order.  Chain-shaped workloads (each event
        #: scheduling its successor into an otherwise empty future) then
        #: never touch the heap at all.
        self._front: "tuple[float, int, Timer | None, Callable[[], None]] | None" = None
        #: Zero-delay events at the current instant, in seq (FIFO) order.
        self._nowq: deque[tuple[float, int, "Timer | None", Callable[[], None]]] = deque()
        self._seq = itertools.count()
        #: Bound ``__next__`` of the sequence counter: every scheduled
        #: event draws one, so skip the ``next()`` builtin dispatch.
        self._next_seq = self._seq.__next__
        self._now = 0.0
        self._processes: list[SimProcess] = []
        self._failed: list[SimProcess] = []
        self._current: SimProcess | None = None
        # Scheduler-side half of the handoff pair; see SimProcess._resume.
        self._token = threading.Lock()
        self._token.acquire()
        self._running = False
        self._closed = False
        self._seed = seed
        self._seedseq = np.random.SeedSequence(seed)
        self._rng_cache: dict[str, np.random.Generator] = {}
        self._tracer = tracer
        self._max_events = max_events
        self._event_count = 0
        #: Logical events carried by batch entries beyond the entries
        #: themselves (see :meth:`defer_batch_at`).
        self._extra_events = 0

    # ------------------------------------------------------------------ #
    # Clock and RNG
    # ------------------------------------------------------------------ #

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        return self._seed

    def rng(self, name: str) -> np.random.Generator:
        """A named, deterministic random stream derived from the master seed.

        The same ``name`` always yields the same stream for a given
        simulator seed, independent of creation order.
        """
        gen = self._rng_cache.get(name)
        if gen is None:
            import zlib

            # zlib.crc32 (not hash()): Python string hashing is salted
            # per-interpreter, which would break run-to-run determinism.
            child = np.random.SeedSequence(
                entropy=self._seedseq.entropy,
                spawn_key=(zlib.crc32(name.encode()),),
            )
            gen = np.random.default_rng(child)
            self._rng_cache[name] = gen
        return gen

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #

    def call_at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn()`` to run in scheduler context at virtual ``time``."""
        if self._closed:
            raise SimClosedError("simulator is closed")
        now = self._now
        seq = self._next_seq()
        if time <= now:
            if time < now - 1e-15:
                raise SchedulingError(
                    f"cannot schedule at {time} before current time {now}"
                )
            # Zero-delay fast path: FIFO append, no heap traffic.  The
            # run loop merges by (time, seq), so ordering is unchanged.
            timer = Timer(now, seq, fn)
            self._nowq.append((now, seq, timer, fn))
        else:
            timer = Timer(time, seq, fn)
            self._push_future((time, seq, timer, fn))
        return timer

    def call_after(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn()`` to run ``delay`` seconds of virtual time from now."""
        if self._closed:
            raise SimClosedError("simulator is closed")
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        seq = self._next_seq()
        if delay == 0.0:
            timer = Timer(self._now, seq, fn)
            self._nowq.append((timer.time, seq, timer, fn))
        else:
            time = self._now + delay
            timer = Timer(time, seq, fn)
            # Inline front-slot insert (see _push_future): hot path.
            front = self._front
            if front is None:
                heap = self._heap
                if heap and heap[0][0] <= time:
                    _heappush(heap, (time, seq, timer, fn))
                else:
                    self._front = (time, seq, timer, fn)
            elif time < front[0]:
                _heappush(self._heap, front)
                self._front = (time, seq, timer, fn)
            else:
                _heappush(self._heap, (time, seq, timer, fn))
        return timer

    def defer(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn()`` after ``delay`` with no cancellation handle.

        The fire-and-forget twin of :meth:`call_after` for hot paths
        (request completions, message deliveries): no :class:`Timer` is
        allocated, so the only per-event cost is the queue entry.
        """
        if self._closed:
            raise SimClosedError("simulator is closed")
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        seq = self._next_seq()
        if delay == 0.0:
            self._nowq.append((self._now, seq, None, fn))
        else:
            time = self._now + delay
            # Inline front-slot insert (see _push_future): hot path.
            front = self._front
            if front is None:
                heap = self._heap
                if heap and heap[0][0] <= time:
                    _heappush(heap, (time, seq, None, fn))
                else:
                    self._front = (time, seq, None, fn)
            elif time < front[0]:
                _heappush(self._heap, front)
                self._front = (time, seq, None, fn)
            else:
                _heappush(self._heap, (time, seq, None, fn))

    def defer_at(self, time: float, fn: Callable[[], None]) -> None:
        """Non-cancellable twin of :meth:`call_at` (see :meth:`defer`)."""
        if self._closed:
            raise SimClosedError("simulator is closed")
        now = self._now
        seq = self._next_seq()
        if time <= now:
            if time < now - 1e-15:
                raise SchedulingError(
                    f"cannot schedule at {time} before current time {now}"
                )
            self._nowq.append((now, seq, None, fn))
        else:
            self._push_future((time, seq, None, fn))

    def defer_batch_at(
        self, time: float, fn: Callable[[], None], count: int
    ) -> None:
        """Schedule ``fn`` as ONE queue entry that stands for ``count``
        logically separate same-instant events.

        This is the vectorized completion path: ``count`` individual
        :meth:`defer_at` calls issued back-to-back draw *consecutive*
        sequence numbers, so no other event can interleave between them
        at the same instant — running their bodies inside one entry
        preserves global dispatch order exactly.  The entry counts as
        ``count`` events in :attr:`event_count`, keeping the determinism
        fingerprint byte-identical to the unbatched schedule while the
        queue only carries (and the run loop only pops) a single entry.
        The batch runs atomically with respect to ``run(until=...)`` and
        the ``max_events`` guard, which both see it as one entry.
        """
        if count < 1:
            raise SchedulingError(f"batch count must be >= 1, got {count}")
        if count == 1:
            self.defer_at(time, fn)
            return
        extra = count - 1

        def run_batch() -> None:
            self._extra_events += extra
            fn()

        self.defer_at(time, run_batch)

    def _push_future(
        self, entry: "tuple[float, int, Timer | None, Callable[[], None]]"
    ) -> None:
        """Insert a future event, maintaining the front-slot invariant.

        New entries always carry the largest sequence number, so a time
        tie is resolved in favour of the incumbent (front or heap head).
        """
        time = entry[0]
        front = self._front
        if front is None:
            heap = self._heap
            if heap and heap[0][0] <= time:
                _heappush(heap, entry)
            else:
                self._front = entry
        elif time < front[0]:
            _heappush(self._heap, front)
            self._front = entry
        else:
            _heappush(self._heap, entry)

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str | None = None,
        start_at: float | None = None,
        **kwargs: Any,
    ) -> SimProcess:
        """Create a simulated process and schedule it to start.

        Args:
            fn: the process body; runs in its own thread under the virtual
                clock.  Its return value is stored on ``proc.result``.
            name: diagnostic name (auto-generated if omitted).
            start_at: virtual time at which the process begins (default:
                now).
        """
        self._check_open()
        if name is None:
            name = f"proc-{len(self._processes)}"
        proc = SimProcess(self, fn, args, kwargs, name)
        self._processes.append(proc)
        proc.state = _READY
        start = self._now if start_at is None else start_at
        proc._resume_at = max(start, self._now)
        self.defer_at(start, proc._resume_action)
        if self._tracer is not None:
            self._trace_emit("spawn", name, "start_at=%g", start)
        proc._thread.start()
        return proc

    # ------------------------------------------------------------------ #
    # Process-side operations (must be called from inside a process)
    # ------------------------------------------------------------------ #

    def current_process(self) -> SimProcess:
        """The process the calling thread is running as."""
        proc = getattr(_tls, "proc", None)
        if proc is None or proc.sim is not self:
            raise NotInProcessError(
                "this operation must be called from inside a simulated process"
            )
        return proc

    def sleep(self, delay: float, *, interruptible: bool = False) -> Any:
        """Advance this process's virtual time by ``delay`` seconds.

        With ``interruptible=True``, another process may cut the sleep
        short via :meth:`SimProcess.interrupt`; in that case the return
        value is :data:`INTERRUPTED`, otherwise ``None``.  The caller can
        compute the remaining time from :meth:`now`.
        """
        proc = getattr(_tls, "proc", None)
        if proc is None or proc.sim is not self:
            raise NotInProcessError(
                "this operation must be called from inside a simulated process"
            )
        if delay < 0:
            raise SchedulingError(f"negative sleep {delay}")
        if interruptible:
            proc._sleep_timer = self.call_after(delay, proc._wake_action)
        else:
            # Fire-and-forget wake: no Timer handle, no closure.
            self.defer(delay, proc._wake_action)
        proc.state = _BLOCKED
        proc.blocked_on = "sleep"
        if self._tracer is not None:
            self._trace_emit("sleep", proc.name, "%g", delay)
        proc._yield_and_wait()
        proc._sleep_timer = None
        proc.blocked_on = ""
        if proc._interrupted:
            proc._interrupted = False
            return INTERRUPTED
        return None

    def block(self, reason: str = "blocked") -> None:
        """Block the calling process until :meth:`wake` is called on it.

        This is the low-level primitive used by the synchronization
        objects in :mod:`repro.des.sync`; application code should prefer
        those.
        """
        proc = self.current_process()
        proc.state = _BLOCKED
        proc.blocked_on = reason
        if self._tracer is not None:
            self._trace_emit("block", proc.name, reason)
        proc._yield_and_wait()
        proc.blocked_on = ""

    def wake(self, proc: SimProcess) -> None:
        """Schedule ``proc`` (blocked via :meth:`block`) to resume now."""
        self._make_ready(proc)

    def checkpoint_yield(self) -> None:
        """Yield to the scheduler for zero virtual time.

        Lets same-timestamp events (e.g. a pending message delivery) run
        before the caller proceeds.  Useful in polling loops.
        """
        self.sleep(0.0)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self, until: float | None = None) -> float:
        """Run events until the queue is exhausted (or virtual time ``until``).

        Returns the final virtual time.  Raises:
            * :class:`ProcessFailed` if any process raised an exception.
            * :class:`DeadlockError` if live processes remain blocked with
              no pending events (a genuine distributed deadlock).
        """
        self._check_open()
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self._running = True
        heap = self._heap
        nowq = self._nowq
        heappop = _heappop
        popleft = nowq.popleft
        limit = self._max_events
        if limit is None:
            limit = float("inf")
        count = self._event_count
        failed = self._failed
        try:
            while True:
                # Merge the three event sources by (time, seq): identical
                # global order to a single-heap kernel, but zero-delay
                # events (the overwhelming majority in message-heavy
                # runs) cost a deque append/popleft, and lone future
                # events sit in the front slot without heap traffic.
                # Future entries are never earlier than the current
                # instant, so they preempt the now-queue only on an
                # equal-time, smaller-seq head.
                if nowq:
                    entry = nowq[0]
                    front = self._front
                    if front is not None:
                        if front[0] > entry[0] or front[1] > entry[1]:
                            popleft()
                        else:
                            self._front = None
                            entry = front
                    elif heap:
                        head = heap[0]
                        if head[0] > entry[0] or head[1] > entry[1]:
                            popleft()
                        else:
                            entry = heappop(heap)
                    else:
                        popleft()
                else:
                    entry = self._front
                    if entry is not None:
                        self._front = None
                    elif heap:
                        entry = heappop(heap)
                    else:
                        break
                time, _seq, timer, action = entry
                if timer is not None and timer.cancelled:
                    # Lazy drop: cancelled entries are discarded when
                    # reached, never by rebuilding the heap.
                    continue
                if until is not None and time > until:
                    # Push the entry back preserving the front-slot
                    # invariant (it usually was the global minimum, so
                    # the vacated front slot is the right place).
                    front = self._front
                    if front is None:
                        self._front = entry
                    elif time < front[0] or (
                        time == front[0] and entry[1] < front[1]
                    ):
                        self._front = entry
                        _heappush(heap, front)
                    else:
                        _heappush(heap, entry)
                    self._now = until
                    return until
                count += 1
                self._event_count = count
                if count > limit:
                    raise SchedulingError(
                        f"exceeded max_events={self._max_events}; "
                        "possible runaway protocol loop"
                    )
                self._now = time
                action()
                if failed:
                    self._raise_if_failed()
            blocked = [p for p in self._processes if p.alive]
            if blocked:
                lines = ", ".join(f"{p.name}<-[{p.blocked_on or p.state}]" for p in blocked)
                raise DeadlockError(
                    f"no pending events at t={self._now:g} but "
                    f"{len(blocked)} process(es) blocked: {lines}"
                )
            return self._now
        finally:
            self._running = False

    def _raise_if_failed(self) -> None:
        if self._failed:
            p = self._failed.pop(0)
            exc = p.exception
            assert exc is not None
            p.state = _KILLED  # don't re-raise on the next event
            raise ProcessFailed(p.name, exc) from exc

    # ------------------------------------------------------------------ #
    # Internal transfer of control
    # ------------------------------------------------------------------ #

    def _resume_process(self, proc: SimProcess) -> None:
        if not proc.alive:
            return
        proc._resume_at = -1.0
        previous = self._current
        self._current = proc
        if self._tracer is not None:
            self._trace_emit("start" if proc.state == _READY else "wake", proc.name, "")
        proc._resume.release()
        self._token.acquire()
        self._current = previous

    def _make_ready(self, proc: SimProcess, *, detail: str = "") -> None:
        if not proc.alive:
            raise SchedulingError(f"cannot wake non-live process {proc!r}")
        now = self._now
        if proc.state == _READY and proc._resume_at == now:
            # Coalesce: a second wake at the same instant would
            # otherwise schedule a duplicate resume that fires as a
            # spurious wakeup after the process blocks on something
            # else.
            return
        proc.state = _READY
        proc._resume_at = now
        self._nowq.append((now, self._next_seq(), None, proc._resume_action))

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Kill all live processes and join their threads.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for proc in self._processes:
            if proc.alive and proc._thread.is_alive():
                proc._killed = True
                self._trace_emit("kill", proc.name, "")
                proc._resume.release()
                self._token.acquire()
        for proc in self._processes:
            if proc._thread.is_alive():
                proc._thread.join(timeout=5.0)

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SimClosedError("simulator is closed")

    # ------------------------------------------------------------------ #
    # Introspection / tracing
    # ------------------------------------------------------------------ #

    @property
    def processes(self) -> Iterable[SimProcess]:
        return tuple(self._processes)

    @property
    def event_count(self) -> int:
        """Number of events executed so far (a determinism fingerprint).

        Batched entries (:meth:`defer_batch_at`) count once per logical
        event they carry, so the fingerprint does not depend on whether
        a hot path happened to batch.
        """
        return self._event_count + self._extra_events

    def _trace_emit(
        self, kind: str, process: str, detail: Any = "", *args: Any
    ) -> None:
        """Record a trace event; formatting is deferred until needed.

        ``detail`` may be a plain string, a ``%``-format string (with
        ``args``), or a zero-argument callable producing the string —
        nothing is built unless a tracer is attached.
        """
        tracer = self._tracer
        if tracer is None:
            return
        if args:
            detail = detail % args
        elif not isinstance(detail, str):
            detail = str(detail())
        tracer.emit(TraceRecord(self._now, kind, process, detail))
