"""Deterministic discrete-event simulation kernel with pluggable backends.

The kernel lets ordinary *blocking-style* Python code (such as an MPI
application calling ``comm.recv(...)``) run under a virtual clock.  Each
simulated process owns a real call stack, but **exactly one process runs
at a time**: the scheduler transfers control to the process whose
wake-up event is next in virtual time, and the process hands control
back whenever it performs a kernel call (``sleep``, blocking on a
primitive, exiting).  Because every hand-off is mediated by the event
queue, and entries are ordered by ``(time, sequence_number)``, execution
is fully deterministic for a fixed program — no dependence on OS thread
scheduling.

*How* a process suspends is an execution-backend concern (see
:mod:`repro.des.backends`): the ``threads`` backend parks one OS thread
per process on a raw ``Lock`` pair (the seed design, kept as the
differential reference), the ``greenlet`` backend stack-switches inside
a single OS thread, and the ``inline`` backend keeps carrier threads but
migrates the scheduler loop onto the blocked process's thread so that a
process whose own wake event is next resumes with zero lock operations.
All backends replay the *same* event schedule — ``event_count`` is the
byte-identical determinism fingerprint across them.

Hot-path design (every simulated second is millions of these):

* **Pure-callback events run inline** in the scheduler loop — timers,
  request completions, and coordinator callbacks never touch a process.
  Only resuming a simulated *process* costs a control transfer, and the
  threads/inline transfer uses raw ``threading.Lock`` pairs (C-level
  acquire/release) rather than the Python-implemented ``Semaphore``.
* **Zero-delay events bypass the heap.**  Events scheduled at the
  current instant (process resumes, completion wakeups, mailbox
  deliveries) go to a FIFO *now-queue*; the run loop merges the two
  sources by ``(time, seq)`` so global ordering — and therefore
  ``event_count`` — is identical to a single-heap kernel.
* **Event entries are ``(time, seq, timer_or_None, action)`` tuples**,
  so heap sifting compares floats/ints in C instead of calling
  ``Timer.__lt__``, and fire-and-forget events (:meth:`Simulator.defer`
  / :meth:`Simulator.defer_at`, non-interruptible sleeps, resumes)
  allocate no Timer handle at all.
* **Cancelled timers are dropped lazily** when popped, never by
  re-heapifying.
* **Tracing is free when off**: ``_trace_emit`` defers ``%``-style
  formatting (or a callable detail) until a tracer is attached, and hot
  call sites skip the call entirely when ``tracer is None``.
* **Consecutive same-time resumes of one process coalesce** into a
  single resume event (a double wake at the same instant was previously
  a latent spurious-wakeup hazard).

This is the substrate on which ``repro.simmpi`` (the simulated MPI
library) and ``repro.mana`` (the checkpointing layer) are built.

Typical usage::

    sim = Simulator(seed=42)
    def worker():
        sim.sleep(1.5)
        print("virtual time is", sim.now())
    sim.spawn(worker, name="w0")
    sim.run()
    sim.close()
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from functools import partial as _partial
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Iterable

import numpy as np

from . import backends as _backends
from .errors import (
    DeadlockError,
    NotInProcessError,
    ProcessFailed,
    ProcessKilled,
    SchedulingError,
    SimClosedError,
)
from .trace import Tracer, TraceRecord

__all__ = ["Simulator", "SimProcess", "Timer", "Interrupted", "INTERRUPTED"]

_tls = threading.local()

# Process lifecycle states.
_NEW = "new"
_READY = "ready"  # has a pending resume event in the queue
_RUNNING = "running"
_BLOCKED = "blocked"  # waiting for an external wake (no queue entry)
_DONE = "done"
_FAILED = "failed"
_KILLED = "killed"
#: Hard-killed by fault injection (:meth:`Simulator.kill_process`): the
#: process is dead to the simulation — not alive, never resumed — but
#: its stack is only unwound later, at :meth:`Simulator.close`.
_CRASHED = "crashed"

#: States in which a process still owns a runnable stack (hot-path
#: membership test shared by ``SimProcess.alive`` and the schedulers).
_ALIVE_STATES = (_NEW, _READY, _RUNNING, _BLOCKED)

#: Default stack size for simulated process threads.  Simulated ranks are
#: shallow (application loop + wrapper + kernel), so a small stack keeps
#: memory bounded when simulating hundreds of ranks.
_STACK_SIZE = 512 * 1024

#: Lazily imported ``greenlet`` module (optional dependency).
_greenlet = None


def _load_greenlet():
    global _greenlet
    if _greenlet is None:
        import greenlet as _mod

        _greenlet = _mod
    return _greenlet


class Interrupted:
    """Sentinel type returned by interruptible sleeps that were cut short."""

    _instance: "Interrupted | None" = None

    def __new__(cls) -> "Interrupted":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "<INTERRUPTED>"


#: Singleton returned by :meth:`Simulator.sleep` when interrupted.
INTERRUPTED = Interrupted()


class Timer:
    """Cancellable handle for a scheduled callback or process resume."""

    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time: float, seq: int, action: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimProcess:
    """A simulated process: a suspendable call stack run only when scheduled.

    Do not instantiate directly; use :meth:`Simulator.spawn`, which picks
    the concrete subclass for the simulator's execution backend.  The
    backend seam is four methods every subclass implements:

    * ``_start`` — post-spawn setup (start a carrier thread, or nothing);
    * ``_transfer_in`` — scheduler-side control transfer into the process;
    * ``_yield_and_wait`` — process-side suspension back to the scheduler;
    * ``_kill`` / ``_join`` — shutdown delivery and reclamation.
    """

    __slots__ = (
        "sim",
        "name",
        "fn",
        "args",
        "kwargs",
        "state",
        "result",
        "exception",
        "blocked_on",
        "_sleep_timer",
        "_interrupted",
        "_killed",
        "_joiners",
        "_waiters_on_exit",
        "_resume_at",
        "_resume_action",
        "_wake_action",
    )

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: str,
    ):
        self.sim = sim
        self.name = name
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.state = _NEW
        self.result: Any = None
        self.exception: BaseException | None = None
        #: What the process is currently blocked on (for deadlock reports).
        self.blocked_on: str = ""
        #: Set while the process holds an interruptible sleep.
        self._sleep_timer: Timer | None = None
        self._interrupted = False
        self._killed = False
        self._joiners: list[SimProcess] = []
        self._waiters_on_exit: list[Callable[[], None]] = []
        #: Virtual time of the pending resume event (-1.0 when none),
        #: for same-time coalescing.
        self._resume_at = -1.0
        # Preallocated hot-path callbacks: one per process for its
        # lifetime instead of one per resume/sleep.  partial() beats a
        # lambda here — the dispatch stays in C, no closure frame.
        self._resume_action = _partial(sim._resume_process, self)
        self._wake_action = _partial(sim._make_ready, self)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def alive(self) -> bool:
        """True while the process has not finished, failed, or been killed."""
        return self.state in _ALIVE_STATES

    @property
    def done(self) -> bool:
        return self.state == _DONE

    @property
    def failed(self) -> bool:
        return self.state == _FAILED

    @property
    def crashed(self) -> bool:
        """True after :meth:`Simulator.kill_process` hard-killed this process."""
        return self.state == _CRASHED

    def __repr__(self) -> str:
        return f"<SimProcess {self.name} state={self.state}>"

    # ------------------------------------------------------------------ #
    # Backend seam (implemented by concrete subclasses)
    # ------------------------------------------------------------------ #

    def _start(self) -> None:
        raise NotImplementedError

    def _transfer_in(self) -> None:
        """Transfer control into this process (scheduler context)."""
        raise NotImplementedError

    def _yield_and_wait(self) -> None:
        """Give control back to the scheduler and wait to be resumed
        (called from inside the process)."""
        raise NotImplementedError

    def _kill(self) -> None:
        """Deliver :class:`ProcessKilled` and run the stack to completion
        (called from :meth:`Simulator.close`)."""
        raise NotImplementedError

    def _join(self) -> None:
        """Reclaim backend resources after :meth:`_kill`."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Cross-process operations (must run while holding control, i.e.
    # from another process, a timer callback, or the scheduler itself)
    # ------------------------------------------------------------------ #

    def interrupt(self) -> bool:
        """Interrupt this process's interruptible sleep, if any.

        Returns True if the process was sleeping interruptibly and has been
        scheduled to wake immediately; False otherwise (no-op).
        """
        if self._sleep_timer is not None and not self._sleep_timer.cancelled:
            self._sleep_timer.cancel()
            self._interrupted = True
            self.sim._make_ready(self)
            self.sim._trace_emit("interrupt", self.name, "")
            return True
        return False

    def on_exit(self, waker: Callable[[], None]) -> None:
        """Register a callback invoked (in scheduler context) when this
        process terminates for any reason.  If already terminated the
        callback runs immediately."""
        if not self.alive:
            waker()
        else:
            self._waiters_on_exit.append(waker)


class _ThreadBackedProcess(SimProcess):
    """Shared machinery for backends that give each process an OS thread."""

    __slots__ = ("_resume", "_thread")

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: str,
    ):
        super().__init__(sim, fn, args, kwargs, name)
        # Raw Lock (not Semaphore): acquire/release are C-level, and the
        # kernel's strict one-runner-at-a-time handoff never needs counts.
        self._resume = threading.Lock()
        self._resume.acquire()
        old = threading.stack_size()
        try:
            threading.stack_size(_STACK_SIZE)
        except (ValueError, RuntimeError):  # pragma: no cover - platform dependent
            pass
        try:
            self._thread = threading.Thread(
                target=self._bootstrap, name=f"sim:{name}", daemon=True
            )
        finally:
            try:
                threading.stack_size(old)
            except (ValueError, RuntimeError):  # pragma: no cover
                pass

    def _bootstrap(self) -> None:
        raise NotImplementedError

    def _start(self) -> None:
        self._thread.start()

    def _kill(self) -> None:
        # Crashed processes (kill_process) still own a parked stack: the
        # crash only marked them dead, so close() must unwind them here
        # like any live process.
        if (self.alive or self.state == _CRASHED) and self._thread.is_alive():
            self._killed = True
            self.sim._trace_emit("kill", self.name, "")
            self._resume.release()
            self.sim._token.acquire()

    def _join(self) -> None:
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)


class _ThreadProcess(_ThreadBackedProcess):
    """``threads`` backend: the scheduler stays on the run() thread and
    each transfer is a ``_resume``/``_token`` lock handoff (two OS
    context switches per resume).  Seed semantics; differential
    reference for the other backends."""

    __slots__ = ()

    def _bootstrap(self) -> None:
        _tls.proc = self
        self._resume.acquire()
        if self._killed:
            self.state = _KILLED
            self.sim._token.release()
            return
        self.state = _RUNNING
        try:
            self.result = self.fn(*self.args, **self.kwargs)
        except ProcessKilled:
            self.state = _KILLED
            self.sim._token.release()
            return
        except BaseException as exc:  # noqa: BLE001 - reported to scheduler
            self.state = _FAILED
            self.exception = exc
            self.sim._failed.append(self)
            self.sim._trace_emit("fail", self.name, repr(exc))
        else:
            self.state = _DONE
            self.sim._trace_emit("exit", self.name, "")
        for waker in self._waiters_on_exit:
            waker()
        self._waiters_on_exit.clear()
        self.sim._token.release()

    def _transfer_in(self) -> None:
        sim = self.sim
        previous = sim._current
        sim._current = self
        self._resume.release()
        sim._token.acquire()
        sim._current = previous

    # Called from *inside* the process thread to give control back to the
    # scheduler and wait to be resumed.
    def _yield_and_wait(self) -> None:
        self.sim._token.release()
        self._resume.acquire()
        if self._killed:
            raise ProcessKilled()
        self.state = _RUNNING


class _InlineProcess(_ThreadBackedProcess):
    """``inline`` backend: carrier threads plus a migrating scheduler.

    Instead of bouncing control back to a dedicated scheduler thread on
    every suspension, the *blocking process itself* becomes the
    scheduler (:meth:`Simulator._inline_core`) and keeps dispatching
    events on its own thread.  When the next process to run is the
    driver itself — the overwhelmingly common case for compute/sleep
    loops — the "transfer" is a plain function return: zero lock
    operations and zero OS context switches.  A cross-process transfer
    releases the target's ``_resume`` lock and parks the driver, one
    lock handoff instead of the threads backend's two.  The thread
    parked in :meth:`Simulator.run` only wakes when the event loop
    reaches a terminal state (queue exhausted, ``until`` cutoff, or an
    error to raise).
    """

    __slots__ = ()

    def _bootstrap(self) -> None:
        sim = self.sim
        _tls.proc = self
        self._resume.acquire()
        if self._killed:
            self.state = _KILLED
            sim._token.release()
            return
        sim._current = self
        self.state = _RUNNING
        try:
            self.result = self.fn(*self.args, **self.kwargs)
        except ProcessKilled:
            self.state = _KILLED
            sim._token.release()
            return
        except BaseException as exc:  # noqa: BLE001 - reported to scheduler
            self.state = _FAILED
            self.exception = exc
            sim._failed.append(self)
            sim._trace_emit("fail", self.name, repr(exc))
        else:
            self.state = _DONE
            sim._trace_emit("exit", self.name, "")
        for waker in self._waiters_on_exit:
            waker()
        self._waiters_on_exit.clear()
        _tls.proc = None
        sim._current = None
        if sim._closed:
            # Killed during close() but the body caught ProcessKilled (or
            # finished racing it): hand control straight back to close()
            # instead of driving the event loop during teardown.
            sim._token.release()
            return
        # This thread still holds the baton: keep dispatching events
        # until control can be handed to the next process (or the
        # terminal result delivered to the thread parked in run()),
        # then let the carrier thread exit.
        kind, payload = sim._inline_core(None, sim._inline_until)
        sim._inline_handoff(kind, payload)

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        # One resume event fires per suspend; fold the generic
        # _resume_process -> _transfer_in pair into a single bound
        # method so the hottest path in this backend is one call.
        self._resume_action = self._resume_inline

    def _resume_inline(self) -> None:
        # Mirrors Simulator._resume_process + _transfer_in exactly.
        if self.state not in _ALIVE_STATES:
            return
        self._resume_at = -1.0
        sim = self.sim
        if sim._tracer is not None:
            sim._trace_emit(
                "start" if self.state == _READY else "wake", self.name, ""
            )
        sim._switch = self

    def _transfer_in(self) -> None:
        # Scheduler context *is* some carrier (or the run() caller's)
        # thread; record the winner and let the drive loop do the baton
        # pass after the current event's action returns.
        self.sim._switch = self

    def _yield_and_wait(self) -> None:
        # This blocked process becomes the scheduler: _inline_core runs
        # right here on its carrier thread.  Returning "resume" means
        # our own wake event came up while driving — the transfer back
        # is this plain function return, no locks touched.  Otherwise
        # pass the baton (wake the next carrier, or deliver a terminal
        # result to the thread parked in run()) and park until resumed.
        sim = self.sim
        _tls.proc = None
        sim._current = None
        kind, payload = sim._inline_core(self, sim._inline_until)
        if kind != "resume":
            sim._inline_handoff(kind, payload)
            self._resume.acquire()
        _tls.proc = self
        sim._current = self
        if self._killed:
            raise ProcessKilled()
        self.state = _RUNNING


class _GreenletProcess(SimProcess):
    """``greenlet`` backend: one greenlet per process, single OS thread.

    Control transfer is a userspace stack switch — no locks, no kernel
    scheduler — and a simulated world stops costing one OS thread per
    rank.  Greenlets are created lazily at first resume, and the parent
    link is re-pointed at the current scheduler greenlet on every
    transfer so a finishing process always falls back into the
    scheduler that resumed it.
    """

    __slots__ = ("_glet",)

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: str,
    ):
        super().__init__(sim, fn, args, kwargs, name)
        self._glet = None

    def _start(self) -> None:
        pass  # the greenlet is created lazily at first resume

    def _bootstrap(self) -> None:
        sim = self.sim
        if self._killed:
            self.state = _KILLED
            return
        self.state = _RUNNING
        try:
            self.result = self.fn(*self.args, **self.kwargs)
        except ProcessKilled:
            self.state = _KILLED
            return
        except BaseException as exc:  # noqa: BLE001 - reported to scheduler
            self.state = _FAILED
            self.exception = exc
            sim._failed.append(self)
            sim._trace_emit("fail", self.name, repr(exc))
        else:
            self.state = _DONE
            sim._trace_emit("exit", self.name, "")
        for waker in self._waiters_on_exit:
            waker()
        self._waiters_on_exit.clear()
        # Falling off ends the greenlet; control returns to the parent
        # (the scheduler greenlet recorded at the last transfer).

    def _transfer_in(self) -> None:
        sim = self.sim
        glet = self._glet
        if glet is None:
            glet = self._glet = _greenlet.greenlet(self._bootstrap)
        here = _greenlet.getcurrent()
        glet.parent = here
        sim._sched_glet = here
        previous = sim._current
        prev_proc = getattr(_tls, "proc", None)
        sim._current = self
        # _tls is shared with the scheduler on this backend (same OS
        # thread), so the current-process marker must swap per switch.
        _tls.proc = self
        glet.switch()
        _tls.proc = prev_proc
        sim._current = previous

    def _yield_and_wait(self) -> None:
        self.sim._sched_glet.switch()
        if self._killed:
            raise ProcessKilled()
        self.state = _RUNNING

    def _kill(self) -> None:
        # Crashed (kill_process) greenlets still hold a suspended stack
        # that must be unwound; every other non-alive state is final.
        if not self.alive and self.state != _CRASHED:
            return
        self._killed = True
        self.sim._trace_emit("kill", self.name, "")
        glet = self._glet
        if glet is None or glet.dead:
            # Never started (or already unwound): nothing to deliver.
            self.state = _KILLED
            return
        glet.parent = _greenlet.getcurrent()
        prev_proc = getattr(_tls, "proc", None)
        _tls.proc = self
        glet.switch()  # resumes in _yield_and_wait -> raises ProcessKilled
        _tls.proc = prev_proc

    def _join(self) -> None:
        pass


_PROCESS_CLASSES: dict[str, type[SimProcess]] = {
    "threads": _ThreadProcess,
    "greenlet": _GreenletProcess,
    "inline": _InlineProcess,
}


class Simulator:
    """The event loop: a queue of timed actions plus the process registry.

    Args:
        seed: master seed for :meth:`rng` streams.  All randomness in a
            simulation should derive from these streams so that runs are
            reproducible.
        tracer: optional :class:`~repro.des.trace.Tracer` for debugging.
        max_events: safety valve — :meth:`run` raises ``SchedulingError``
            after this many events (guards against runaway protocol loops
            in tests).
        backend: execution backend (``"threads"``, ``"greenlet"``,
            ``"inline"`` or ``"auto"``); ``None`` falls through the
            precedence chain in :mod:`repro.des.backends`
            (process default, ``REPRO_SIM_BACKEND``, auto-detect).
            All backends produce byte-identical event schedules.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        tracer: Tracer | None = None,
        max_events: int | None = None,
        backend: str | None = None,
    ):
        self._backend = _backends.resolve_backend(backend)
        if self._backend == "greenlet":
            _load_greenlet()
        self._process_cls = _PROCESS_CLASSES[self._backend]
        self._inline = self._backend == "inline"
        #: Future events: ``(time, seq, timer_or_None, action)`` tuples
        #: so heap sifting compares in C without calling back into
        #: Python; the Timer slot is None for non-cancellable events.
        self._heap: list[tuple[float, int, "Timer | None", Callable[[], None]]] = []
        #: Front-slot cache: the earliest *future* event, kept out of the
        #: heap.  Invariant: when set, it precedes every heap entry in
        #: ``(time, seq)`` order.  Chain-shaped workloads (each event
        #: scheduling its successor into an otherwise empty future) then
        #: never touch the heap at all.
        self._front: "tuple[float, int, Timer | None, Callable[[], None]] | None" = None
        #: Zero-delay events at the current instant, in seq (FIFO) order.
        self._nowq: deque[tuple[float, int, "Timer | None", Callable[[], None]]] = deque()
        self._seq = itertools.count()
        #: Bound ``__next__`` of the sequence counter: every scheduled
        #: event draws one, so skip the ``next()`` builtin dispatch.
        self._next_seq = self._seq.__next__
        self._now = 0.0
        self._processes: list[SimProcess] = []
        self._failed: list[SimProcess] = []
        self._current: SimProcess | None = None
        # Scheduler-side half of the handoff pair (threads/inline
        # backends); see _ThreadBackedProcess._resume.
        self._token = threading.Lock()
        self._token.acquire()
        self._running = False
        self._closed = False
        self._seed = seed
        self._seedseq = np.random.SeedSequence(seed)
        self._rng_cache: dict[str, np.random.Generator] = {}
        self._tracer = tracer
        self._max_events = max_events
        self._event_count = 0
        #: Logical events carried by batch entries beyond the entries
        #: themselves (see :meth:`defer_batch_at`).
        self._extra_events = 0
        #: inline backend: process chosen by the last resume action,
        #: consumed by the drive loop right after the action returns.
        self._switch: SimProcess | None = None
        #: inline backend: ``until`` of the active run(), re-read by every
        #: drive loop entered while that run is in flight.
        self._inline_until: float | None = None
        #: inline backend: terminal result/exception handed from whichever
        #: thread finished driving back to the thread parked in run().
        self._inline_result: Any = None
        self._inline_exc: BaseException | None = None
        #: greenlet backend: the scheduler greenlet to switch back to.
        self._sched_glet = None

    # ------------------------------------------------------------------ #
    # Clock and RNG
    # ------------------------------------------------------------------ #

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def backend(self) -> str:
        """Concrete execution backend name (``threads``/``greenlet``/``inline``)."""
        return self._backend

    def rng(self, name: str) -> np.random.Generator:
        """A named, deterministic random stream derived from the master seed.

        The same ``name`` always yields the same stream for a given
        simulator seed, independent of creation order.
        """
        gen = self._rng_cache.get(name)
        if gen is None:
            import zlib

            # zlib.crc32 (not hash()): Python string hashing is salted
            # per-interpreter, which would break run-to-run determinism.
            child = np.random.SeedSequence(
                entropy=self._seedseq.entropy,
                spawn_key=(zlib.crc32(name.encode()),),
            )
            gen = np.random.default_rng(child)
            self._rng_cache[name] = gen
        return gen

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #

    def call_at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn()`` to run in scheduler context at virtual ``time``."""
        if self._closed:
            raise SimClosedError("simulator is closed")
        now = self._now
        seq = self._next_seq()
        if time <= now:
            if time < now - 1e-15:
                raise SchedulingError(
                    f"cannot schedule at {time} before current time {now}"
                )
            # Zero-delay fast path: FIFO append, no heap traffic.  The
            # run loop merges by (time, seq), so ordering is unchanged.
            timer = Timer(now, seq, fn)
            self._nowq.append((now, seq, timer, fn))
        else:
            timer = Timer(time, seq, fn)
            self._push_future((time, seq, timer, fn))
        return timer

    def call_after(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn()`` to run ``delay`` seconds of virtual time from now."""
        if self._closed:
            raise SimClosedError("simulator is closed")
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        seq = self._next_seq()
        if delay == 0.0:
            timer = Timer(self._now, seq, fn)
            self._nowq.append((timer.time, seq, timer, fn))
        else:
            time = self._now + delay
            timer = Timer(time, seq, fn)
            # Inline front-slot insert (see _push_future): hot path.
            front = self._front
            if front is None:
                heap = self._heap
                if heap and heap[0][0] <= time:
                    _heappush(heap, (time, seq, timer, fn))
                else:
                    self._front = (time, seq, timer, fn)
            elif time < front[0]:
                _heappush(self._heap, front)
                self._front = (time, seq, timer, fn)
            else:
                _heappush(self._heap, (time, seq, timer, fn))
        return timer

    def defer(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn()`` after ``delay`` with no cancellation handle.

        The fire-and-forget twin of :meth:`call_after` for hot paths
        (request completions, message deliveries): no :class:`Timer` is
        allocated, so the only per-event cost is the queue entry.
        """
        if self._closed:
            raise SimClosedError("simulator is closed")
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        seq = self._next_seq()
        if delay == 0.0:
            self._nowq.append((self._now, seq, None, fn))
        else:
            time = self._now + delay
            # Inline front-slot insert (see _push_future): hot path.
            front = self._front
            if front is None:
                heap = self._heap
                if heap and heap[0][0] <= time:
                    _heappush(heap, (time, seq, None, fn))
                else:
                    self._front = (time, seq, None, fn)
            elif time < front[0]:
                _heappush(self._heap, front)
                self._front = (time, seq, None, fn)
            else:
                _heappush(self._heap, (time, seq, None, fn))

    def defer_at(self, time: float, fn: Callable[[], None]) -> None:
        """Non-cancellable twin of :meth:`call_at` (see :meth:`defer`)."""
        if self._closed:
            raise SimClosedError("simulator is closed")
        now = self._now
        seq = self._next_seq()
        if time <= now:
            if time < now - 1e-15:
                raise SchedulingError(
                    f"cannot schedule at {time} before current time {now}"
                )
            self._nowq.append((now, seq, None, fn))
        else:
            self._push_future((time, seq, None, fn))

    def defer_batch_at(
        self, time: float, fn: Callable[[], None], count: int
    ) -> None:
        """Schedule ``fn`` as ONE queue entry that stands for ``count``
        logically separate same-instant events.

        This is the vectorized completion path: ``count`` individual
        :meth:`defer_at` calls issued back-to-back draw *consecutive*
        sequence numbers, so no other event can interleave between them
        at the same instant — running their bodies inside one entry
        preserves global dispatch order exactly.  The entry counts as
        ``count`` events in :attr:`event_count`, keeping the determinism
        fingerprint byte-identical to the unbatched schedule while the
        queue only carries (and the run loop only pops) a single entry.
        The batch runs atomically with respect to ``run(until=...)`` and
        the ``max_events`` guard, which both see it as one entry.
        """
        if count < 1:
            raise SchedulingError(f"batch count must be >= 1, got {count}")
        if count == 1:
            self.defer_at(time, fn)
            return
        extra = count - 1

        def run_batch() -> None:
            self._extra_events += extra
            fn()

        self.defer_at(time, run_batch)

    def _push_future(
        self, entry: "tuple[float, int, Timer | None, Callable[[], None]]"
    ) -> None:
        """Insert a future event, maintaining the front-slot invariant.

        New entries always carry the largest sequence number, so a time
        tie is resolved in favour of the incumbent (front or heap head).
        """
        time = entry[0]
        front = self._front
        if front is None:
            heap = self._heap
            if heap and heap[0][0] <= time:
                _heappush(heap, entry)
            else:
                self._front = entry
        elif time < front[0]:
            _heappush(self._heap, front)
            self._front = entry
        else:
            _heappush(self._heap, entry)

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str | None = None,
        start_at: float | None = None,
        **kwargs: Any,
    ) -> SimProcess:
        """Create a simulated process and schedule it to start.

        Args:
            fn: the process body; runs as a suspendable call stack under
                the virtual clock.  Its return value is stored on
                ``proc.result``.
            name: diagnostic name (auto-generated if omitted).
            start_at: virtual time at which the process begins (default:
                now).
        """
        self._check_open()
        if name is None:
            name = f"proc-{len(self._processes)}"
        proc = self._process_cls(self, fn, args, kwargs, name)
        self._processes.append(proc)
        proc.state = _READY
        start = self._now if start_at is None else start_at
        proc._resume_at = max(start, self._now)
        self.defer_at(start, proc._resume_action)
        if self._tracer is not None:
            self._trace_emit("spawn", name, "start_at=%g", start)
        proc._start()
        return proc

    # ------------------------------------------------------------------ #
    # Process-side operations (must be called from inside a process)
    # ------------------------------------------------------------------ #

    def current_process(self) -> SimProcess:
        """The process the calling thread is running as."""
        proc = getattr(_tls, "proc", None)
        if proc is None or proc.sim is not self:
            raise NotInProcessError(
                "this operation must be called from inside a simulated process"
            )
        return proc

    def sleep(self, delay: float, *, interruptible: bool = False) -> Any:
        """Advance this process's virtual time by ``delay`` seconds.

        With ``interruptible=True``, another process may cut the sleep
        short via :meth:`SimProcess.interrupt`; in that case the return
        value is :data:`INTERRUPTED`, otherwise ``None``.  The caller can
        compute the remaining time from :meth:`now`.
        """
        proc = getattr(_tls, "proc", None)
        if proc is None or proc.sim is not self:
            raise NotInProcessError(
                "this operation must be called from inside a simulated process"
            )
        if delay < 0:
            raise SchedulingError(f"negative sleep {delay}")
        if interruptible:
            proc._sleep_timer = self.call_after(delay, proc._wake_action)
        else:
            # Fire-and-forget wake, with defer()'s insert inlined:
            # sleep is the hottest call in the kernel and the guards
            # above already ran.
            if self._closed:
                raise SimClosedError("simulator is closed")
            wake = proc._wake_action
            seq = self._next_seq()
            if delay == 0.0:
                self._nowq.append((self._now, seq, None, wake))
            else:
                time = self._now + delay
                front = self._front
                if front is None:
                    heap = self._heap
                    if heap and heap[0][0] <= time:
                        _heappush(heap, (time, seq, None, wake))
                    else:
                        self._front = (time, seq, None, wake)
                elif time < front[0]:
                    _heappush(self._heap, front)
                    self._front = (time, seq, None, wake)
                else:
                    _heappush(self._heap, (time, seq, None, wake))
        proc.state = _BLOCKED
        proc.blocked_on = "sleep"
        if self._tracer is not None:
            self._trace_emit("sleep", proc.name, "%g", delay)
        proc._yield_and_wait()
        proc.blocked_on = ""
        if interruptible:
            proc._sleep_timer = None
            if proc._interrupted:
                proc._interrupted = False
                return INTERRUPTED
        return None

    def block(self, reason: str = "blocked") -> None:
        """Block the calling process until :meth:`wake` is called on it.

        This is the low-level primitive used by the synchronization
        objects in :mod:`repro.des.sync`; application code should prefer
        those.
        """
        proc = self.current_process()
        proc.state = _BLOCKED
        proc.blocked_on = reason
        if self._tracer is not None:
            self._trace_emit("block", proc.name, reason)
        proc._yield_and_wait()
        proc.blocked_on = ""

    def wake(self, proc: SimProcess) -> None:
        """Schedule ``proc`` (blocked via :meth:`block`) to resume now."""
        self._make_ready(proc)

    def kill_process(self, proc: SimProcess) -> bool:
        """Hard-kill ``proc`` at the current instant (crash-fault injection).

        Models a rank dying mid-protocol: the process is immediately dead
        to the simulation — ``alive`` goes False, any pending sleep is
        cancelled, every future wake/resume aimed at it is inert, and
        exit waiters fire now — but its call stack is **not** unwound
        here.  Unwinding requires transferring control into the process
        (and, on the inline backend, the killer may *be* running on the
        victim's carrier thread), so the stack is reclaimed later by
        :meth:`close` exactly like a normal shutdown kill.

        Survivors blocked on the corpse (a collective, a recv) stay
        blocked; once no events remain, :meth:`run` raises
        :class:`DeadlockError` — the crash's observable teardown signal.

        Returns True if the process was alive and is now crashed; False
        if it had already terminated (no-op, so racing a crash against
        natural completion is safe).
        """
        if not proc.alive:
            return False
        timer = proc._sleep_timer
        if timer is not None:
            timer.cancel()
            proc._sleep_timer = None
        proc.state = _CRASHED
        proc._killed = True
        proc.blocked_on = ""
        self._trace_emit("crash", proc.name, "")
        for waker in proc._waiters_on_exit:
            waker()
        proc._waiters_on_exit.clear()
        return True

    def checkpoint_yield(self) -> None:
        """Yield to the scheduler for zero virtual time.

        Lets same-timestamp events (e.g. a pending message delivery) run
        before the caller proceeds.  Useful in polling loops.
        """
        self.sleep(0.0)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self, until: float | None = None) -> float:
        """Run events until the queue is exhausted (or virtual time ``until``).

        Returns the final virtual time.  Raises:
            * :class:`ProcessFailed` if any process raised an exception.
            * :class:`DeadlockError` if live processes remain blocked with
              no pending events (a genuine distributed deadlock).
        """
        self._check_open()
        if self._running:
            raise SchedulingError("run() is not reentrant")
        self._running = True
        try:
            if self._inline:
                return self._run_inline(until)
            return self._run_events(until)
        finally:
            self._running = False

    def _run_events(self, until: float | None) -> float:
        """Scheduler-thread event loop (threads and greenlet backends):
        a process resume (`_resume_process` action) transfers control
        synchronously and returns once the process suspends again."""
        heap = self._heap
        nowq = self._nowq
        heappop = _heappop
        popleft = nowq.popleft
        limit = self._max_events
        if limit is None:
            limit = float("inf")
        count = self._event_count
        failed = self._failed
        while True:
            # Merge the three event sources by (time, seq): identical
            # global order to a single-heap kernel, but zero-delay
            # events (the overwhelming majority in message-heavy
            # runs) cost a deque append/popleft, and lone future
            # events sit in the front slot without heap traffic.
            # Future entries are never earlier than the current
            # instant, so they preempt the now-queue only on an
            # equal-time, smaller-seq head.
            if nowq:
                entry = nowq[0]
                front = self._front
                if front is not None:
                    if front[0] > entry[0] or front[1] > entry[1]:
                        popleft()
                    else:
                        self._front = None
                        entry = front
                elif heap:
                    head = heap[0]
                    if head[0] > entry[0] or head[1] > entry[1]:
                        popleft()
                    else:
                        entry = heappop(heap)
                else:
                    popleft()
            else:
                entry = self._front
                if entry is not None:
                    self._front = None
                elif heap:
                    entry = heappop(heap)
                else:
                    break
            time, _seq, timer, action = entry
            if timer is not None and timer.cancelled:
                # Lazy drop: cancelled entries are discarded when
                # reached, never by rebuilding the heap.
                continue
            if until is not None and time > until:
                # Push the entry back preserving the front-slot
                # invariant (it usually was the global minimum, so
                # the vacated front slot is the right place).
                front = self._front
                if front is None:
                    self._front = entry
                elif time < front[0] or (
                    time == front[0] and entry[1] < front[1]
                ):
                    self._front = entry
                    _heappush(heap, front)
                else:
                    _heappush(heap, entry)
                self._now = until
                return until
            count += 1
            self._event_count = count
            if count > limit:
                raise SchedulingError(
                    f"exceeded max_events={self._max_events}; "
                    "possible runaway protocol loop"
                )
            self._now = time
            action()
            if failed:
                self._raise_if_failed()
        blocked = [p for p in self._processes if p.alive]
        if blocked:
            lines = ", ".join(f"{p.name}<-[{p.blocked_on or p.state}]" for p in blocked)
            raise DeadlockError(
                f"no pending events at t={self._now:g} but "
                f"{len(blocked)} process(es) blocked: {lines}"
            )
        return self._now

    def _run_inline(self, until: float | None) -> float:
        """run() entry for the inline backend.

        Drives the loop on the calling thread until the first process
        transfer, then parks; carrier threads keep the baton moving
        among themselves and only wake this thread at a terminal state.
        """
        self._inline_until = until
        kind, payload = self._inline_core(None, until)
        if kind == "switch":
            payload._resume.release()
            self._token.acquire()
            exc = self._inline_exc
            if exc is not None:
                self._inline_exc = None
                self._inline_result = None
                raise exc
            return self._inline_result
        if kind == "error":
            raise payload
        return payload

    def _inline_core(
        self, me: SimProcess | None, until: float | None
    ) -> tuple[str, Any]:
        """Inline-backend event loop body, runnable on any thread.

        Dispatches events exactly like :meth:`_run_events` (same
        three-source merge, same counting — the determinism fingerprint
        is shared) until control must leave this thread.  Returns:

        * ``("resume", None)`` — the next runner is ``me``: the caller
          simply returns into the process body.  No locks touched.
        * ``("switch", proc)`` — transfer to another process's carrier.
        * ``("done", time)`` — queue exhausted or ``until`` reached.
        * ``("error", exc)`` — terminal exception for run()'s caller.
        """
        failed = self._failed
        if failed:
            try:
                self._raise_if_failed()
            except BaseException as exc:  # noqa: BLE001 - ferried to run()
                return ("error", exc)
        heap = self._heap
        nowq = self._nowq
        heappop = _heappop
        popleft = nowq.popleft
        limit = self._max_events
        if limit is None:
            limit = float("inf")
        # Float sentinel so the per-event cutoff test is one compare.
        cutoff = float("inf") if until is None else until
        count = self._event_count
        while True:
            # Entry selection: byte-for-byte the merge in _run_events.
            if nowq:
                entry = nowq[0]
                front = self._front
                if front is not None:
                    if front[0] > entry[0] or front[1] > entry[1]:
                        popleft()
                    else:
                        self._front = None
                        entry = front
                elif heap:
                    head = heap[0]
                    if head[0] > entry[0] or head[1] > entry[1]:
                        popleft()
                    else:
                        entry = heappop(heap)
                else:
                    popleft()
            else:
                entry = self._front
                if entry is not None:
                    self._front = None
                elif heap:
                    entry = heappop(heap)
                else:
                    break
            time, _seq, timer, action = entry
            if timer is not None and timer.cancelled:
                continue
            if time > cutoff:
                front = self._front
                if front is None:
                    self._front = entry
                elif time < front[0] or (
                    time == front[0] and entry[1] < front[1]
                ):
                    self._front = entry
                    _heappush(heap, front)
                else:
                    _heappush(heap, entry)
                self._now = until
                return ("done", until)
            count += 1
            self._event_count = count
            if count > limit:
                return (
                    "error",
                    SchedulingError(
                        f"exceeded max_events={self._max_events}; "
                        "possible runaway protocol loop"
                    ),
                )
            self._now = time
            action()
            switch = self._switch
            if switch is not None:
                self._switch = None
                if switch is me:
                    return ("resume", None)
                return ("switch", switch)
        blocked = [p for p in self._processes if p.alive]
        if blocked:
            lines = ", ".join(f"{p.name}<-[{p.blocked_on or p.state}]" for p in blocked)
            return (
                "error",
                DeadlockError(
                    f"no pending events at t={self._now:g} but "
                    f"{len(blocked)} process(es) blocked: {lines}"
                ),
            )
        return ("done", self._now)

    def _inline_handoff(self, kind: str, payload: Any) -> None:
        """Pass the baton after :meth:`_inline_core` stopped: wake the
        next process's carrier, or deliver the terminal result to the
        thread parked in :meth:`_run_inline`."""
        if kind == "switch":
            payload._resume.release()
            return
        if kind == "error":
            self._inline_exc = payload
            self._inline_result = None
        else:
            self._inline_exc = None
            self._inline_result = payload
        self._token.release()

    def _raise_if_failed(self) -> None:
        if self._failed:
            p = self._failed.pop(0)
            exc = p.exception
            assert exc is not None
            p.state = _KILLED  # don't re-raise on the next event
            raise ProcessFailed(p.name, exc) from exc

    # ------------------------------------------------------------------ #
    # Internal transfer of control
    # ------------------------------------------------------------------ #

    def _resume_process(self, proc: SimProcess) -> None:
        if proc.state not in _ALIVE_STATES:
            return
        proc._resume_at = -1.0
        if self._tracer is not None:
            self._trace_emit("start" if proc.state == _READY else "wake", proc.name, "")
        proc._transfer_in()

    def _make_ready(self, proc: SimProcess, *, detail: str = "") -> None:
        if proc.state not in _ALIVE_STATES:
            if proc.state == _CRASHED:
                # Late deliveries/wakes aimed at a crashed rank are
                # inert — a corpse cannot be woken, and its peers have
                # no way to know it died before their message landed.
                return
            raise SchedulingError(f"cannot wake non-live process {proc!r}")
        now = self._now
        if proc.state == _READY and proc._resume_at == now:
            # Coalesce: a second wake at the same instant would
            # otherwise schedule a duplicate resume that fires as a
            # spurious wakeup after the process blocks on something
            # else.
            return
        proc.state = _READY
        proc._resume_at = now
        self._nowq.append((now, self._next_seq(), None, proc._resume_action))

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Kill all live processes and reclaim their stacks.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for proc in self._processes:
            proc._kill()
        for proc in self._processes:
            proc._join()

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SimClosedError("simulator is closed")

    # ------------------------------------------------------------------ #
    # Introspection / tracing
    # ------------------------------------------------------------------ #

    @property
    def processes(self) -> Iterable[SimProcess]:
        return tuple(self._processes)

    @property
    def event_count(self) -> int:
        """Number of events executed so far (a determinism fingerprint).

        Batched entries (:meth:`defer_batch_at`) count once per logical
        event they carry, so the fingerprint does not depend on whether
        a hot path happened to batch.
        """
        return self._event_count + self._extra_events

    def _trace_emit(
        self, kind: str, process: str, detail: Any = "", *args: Any
    ) -> None:
        """Record a trace event; formatting is deferred until needed.

        ``detail`` may be a plain string, a ``%``-format string (with
        ``args``), or a zero-argument callable producing the string —
        nothing is built unless a tracer is attached.
        """
        tracer = self._tracer
        if tracer is None:
            return
        if args:
            detail = detail % args
        elif not isinstance(detail, str):
            detail = str(detail())
        tracer.emit(TraceRecord(self._now, kind, process, detail))
