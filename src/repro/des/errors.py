"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when the event queue is empty but live processes are blocked.

    The message lists every blocked process and what it is blocked on,
    which is the primary debugging aid for protocol-level deadlocks
    (e.g. a rank waiting in a collective that another rank never joins).
    """


class ProcessFailed(SimulationError):
    """Raised by :meth:`Simulator.run` when a simulated process raised.

    The original exception is attached as ``__cause__`` and via the
    ``original`` attribute.
    """

    def __init__(self, process_name: str, original: BaseException):
        super().__init__(f"process {process_name!r} failed: {original!r}")
        self.process_name = process_name
        self.original = original


class ProcessKilled(BaseException):
    """Injected into a process thread to unwind it when the simulation closes.

    Derives from ``BaseException`` so that application-level ``except
    Exception`` blocks cannot swallow it.
    """


class SimClosedError(SimulationError):
    """Raised when an operation is attempted on a closed simulator."""


class NotInProcessError(SimulationError):
    """Raised when a process-only operation is called outside any process."""


class SchedulingError(SimulationError):
    """Raised on kernel misuse (nested run(), resuming a dead process, ...)."""
