"""Synchronization primitives built on the kernel's block/wake operations.

All primitives are *simulation-side*: blocking a process costs zero wall
time and suspends it in virtual time until another process (or a timer)
fires the wake condition.  They are the building blocks for the message
matching engine and the checkpoint control plane.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Any

from .errors import SchedulingError
from .kernel import SimProcess, Simulator, Timer

__all__ = ["Waiter", "TIMEOUT", "SimEvent", "Mailbox", "Gate"]


class _Timeout:
    def __repr__(self) -> str:  # pragma: no cover
        return "<TIMEOUT>"


#: Sentinel returned by timed waits that expired.
TIMEOUT = _Timeout()


class Waiter:
    """A one-shot completion cell: one process waits, anyone fires.

    ``fire(value)`` may happen before or after ``wait()``; the value is
    delivered either way.  This is the primitive underlying simulated MPI
    requests (each pending receive/collective-exit owns a Waiter).
    """

    __slots__ = ("sim", "_proc", "_value", "_fired", "_timer", "label", "on_expire")

    def __init__(self, sim: Simulator, label: str = "waiter"):
        self.sim = sim
        self.label = label
        self._proc: SimProcess | None = None
        self._value: Any = None
        self._fired = False
        self._timer: Timer | None = None
        #: Optional hook invoked (in scheduler context, with this waiter)
        #: the moment a timed wait expires — *before* the waiting process
        #: resumes.  Containers holding the waiter in a fire-queue use it
        #: to deregister immediately: between the timeout event and the
        #: process's resume event, other same-instant events can run, and
        #: a ``fire`` landing in that window would complete a waiter
        #: whose owner has already given up.
        self.on_expire = None

    def __repr__(self) -> str:  # pragma: no cover
        state = "fired" if self._fired else "pending"
        return f"<Waiter {self.label} {state}>"

    @property
    def fired(self) -> bool:
        return self._fired

    def peek(self) -> Any:
        """The fired value (only meaningful once :attr:`fired` is True)."""
        return self._value

    def fire(self, value: Any = None) -> None:
        """Complete the waiter, waking the waiting process if any.

        Firing twice is an error (one-shot semantics keep protocol bugs
        visible instead of silently overwriting completion values).
        """
        if self._fired:
            raise SchedulingError(f"waiter {self.label!r} fired twice")
        self._fired = True
        self._value = value
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._proc is not None:
            proc, self._proc = self._proc, None
            self.sim.wake(proc)

    def wait(self, timeout: float | None = None) -> Any:
        """Block the calling process until fired; returns the fired value.

        With ``timeout``, returns :data:`TIMEOUT` if the waiter did not
        fire within that much virtual time.
        """
        if self._fired:
            return self._value
        proc = self.sim.current_process()
        if self._proc is not None:
            raise SchedulingError(f"waiter {self.label!r} already has a waiter")
        self._proc = proc
        if timeout is not None:
            self._timer = self.sim.call_after(timeout, self._on_timeout)
        self.sim.block("wait:" + self.label)
        if self._fired:
            return self._value
        return TIMEOUT

    def _on_timeout(self) -> None:
        self._timer = None
        if self._fired or self._proc is None:
            return
        proc, self._proc = self._proc, None
        if self.on_expire is not None:
            self.on_expire(self)
        self.sim.wake(proc)


class SimEvent:
    """A broadcast flag: processes wait until some process sets it.

    Unlike :class:`Waiter`, any number of processes may wait, and waiting
    on an already-set event returns immediately.  Used for checkpoint
    intent flags and phase barriers in the coordinator.
    """

    def __init__(self, sim: Simulator, label: str = "event"):
        self.sim = sim
        self.label = label
        self._set = False
        self._value: Any = None
        self._waiters: list[SimProcess] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self, value: Any = None) -> None:
        """Set the flag and wake every waiting process.  Idempotent."""
        if self._set:
            return
        self._set = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim.wake(proc)

    def clear(self) -> None:
        """Reset to unset (waiters registered afterwards will block)."""
        self._set = False
        self._value = None

    def wait(self) -> Any:
        """Block until set; returns the value passed to :meth:`set`."""
        if self._set:
            return self._value
        proc = self.sim.current_process()
        self._waiters.append(proc)
        self.sim.block(f"event:{self.label}")
        return self._value


class Mailbox:
    """An unbounded FIFO queue between processes.

    ``put`` never blocks; ``get`` blocks until an item is available.
    Delivery order is FIFO and deterministic.  This is the transport used
    by the checkpoint control plane (coordinator <-> rank messages) —
    deliberately separate from the simulated MPI data plane, mirroring
    how MANA's coordinator messages ride on a DMTCP socket rather than
    on MPI itself.
    """

    def __init__(self, sim: Simulator, label: str = "mailbox"):
        self.sim = sim
        self.label = label
        #: Precomputed waiter label — ``get`` is a hot path and must not
        #: rebuild the same string per call.
        self._getter_label = "mailbox:" + label
        self._items: deque[Any] = deque()
        self._getters: deque[Waiter] = deque()
        self._taps: list = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any, *, delay: float = 0.0) -> None:
        """Deposit ``item``; with ``delay`` the deposit happens later in
        virtual time (models control-plane latency)."""
        if delay > 0.0:
            self.sim.defer(delay, partial(self._deliver, item))
        else:
            self._deliver(item)

    def _deliver(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().fire(item)
        else:
            self._items.append(item)
        if self._taps:
            # Copy only when taps exist: delivery is the control-plane
            # hot path and most mailboxes never register one.  The copy
            # itself stays — taps may remove themselves while firing.
            for tap in list(self._taps):
                tap()

    def add_tap(self, callback) -> None:
        """Register a notification callback invoked (in scheduler context)
        whenever an item is delivered.  The item itself still queues
        normally — taps let a process blocked on *something else* learn
        that control traffic arrived."""
        self._taps.append(callback)

    def remove_tap(self, callback) -> None:
        try:
            self._taps.remove(callback)
        except ValueError:
            pass

    def get(self, timeout: float | None = None) -> Any:
        """Take the oldest item, blocking until one arrives.

        Returns :data:`TIMEOUT` on expiry when ``timeout`` is given.
        """
        if self._items:
            return self._items.popleft()
        w = Waiter(self.sim, label=self._getter_label)
        if timeout is not None:
            # Deregister at the expiry *event*, not when the getter's
            # resume runs: a delivery in between must re-queue the item
            # for the next taker, not complete a timed-out waiter.
            w.on_expire = self._expire_getter
        self._getters.append(w)
        value = w.wait(timeout=timeout)
        if value is TIMEOUT:
            # Belt-and-braces for spurious wakeups; on_expire has
            # normally removed the waiter already.
            try:
                self._getters.remove(w)
            except ValueError:
                pass
        return value

    def _expire_getter(self, w: Waiter) -> None:
        try:
            self._getters.remove(w)
        except ValueError:  # pragma: no cover - already consumed
            pass

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking take: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def peek(self) -> tuple[bool, Any]:
        """Non-consuming look at the oldest queued item."""
        if self._items:
            return True, self._items[0]
        return False, None


class Gate:
    """A counting rendezvous: opens once ``n`` processes have arrived.

    Used by tests and by the world bootstrap to make sure all ranks are
    up before time starts advancing.
    """

    def __init__(self, sim: Simulator, n: int, label: str = "gate"):
        if n < 1:
            raise SchedulingError(f"gate needs n >= 1, got {n}")
        self.sim = sim
        self.n = n
        self.label = label
        self._arrived = 0
        self._event = SimEvent(sim, label=f"gate:{label}")

    @property
    def arrived(self) -> int:
        return self._arrived

    def arrive_and_wait(self) -> None:
        """Arrive; block until all ``n`` processes have arrived."""
        self._arrived += 1
        if self._arrived > self.n:
            raise SchedulingError(f"gate {self.label!r} overfilled ({self._arrived}/{self.n})")
        if self._arrived == self.n:
            self._event.set()
        else:
            self._event.wait()
