"""Execution-backend selection for the simulation kernel.

The kernel runs ordinary blocking-style Python code under a virtual
clock, which requires *suspending* a simulated process mid-call-stack.
Three mechanisms implement that suspension:

* ``threads`` — one OS thread per process, raw-``Lock`` handoff pairs.
  This is the seed implementation and remains the differential
  reference: every other backend must reproduce its event schedule
  byte-for-byte (``Simulator.event_count`` is the fingerprint).
* ``greenlet`` — one greenlet per process, scheduler and processes
  share a single OS thread.  Control transfer is a userspace stack
  switch (no locks, no kernel involvement), and a large world stops
  costing one OS thread per rank.  Requires the optional ``greenlet``
  package; auto-selected when importable.
* ``inline`` — pure-stdlib same-thread-style scheduling: processes
  keep carrier threads, but the scheduler loop *migrates onto the
  blocked process's thread* (a baton protocol).  A process whose own
  wake event is next in virtual time resumes inline with **zero** lock
  operations and zero OS context switches; a cross-process transfer
  costs one lock handoff instead of two.  This is the fast backend on
  interpreters without greenlet.

Selection precedence (first match wins):

1. explicit ``Simulator(backend=...)`` argument;
2. process-wide default installed via :func:`set_default_backend`
   (the ``--backend`` CLI flag lands here, and the experiment engine
   forwards the *resolved* name to spawned workers so parallel runs
   agree with serial);
3. the ``REPRO_SIM_BACKEND`` environment variable;
4. ``auto``: ``greenlet`` when importable, else ``threads``.

Every step accepts ``auto`` and the concrete names below; asking for
``greenlet`` explicitly when the package is missing is a loud error,
never a silent fallback.
"""

from __future__ import annotations

import os

__all__ = [
    "BACKENDS",
    "ENV_VAR",
    "available_backends",
    "greenlet_available",
    "resolve_backend",
    "set_default_backend",
    "get_default_backend",
]

#: Concrete backend names, in documentation order.
BACKENDS = ("threads", "greenlet", "inline")

#: Environment variable consulted when no explicit choice was made.
ENV_VAR = "REPRO_SIM_BACKEND"

_default_backend: str | None = None


def greenlet_available() -> bool:
    """True when the optional ``greenlet`` package is importable."""
    try:
        import greenlet  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> tuple[str, ...]:
    """The concrete backends usable in this interpreter."""
    if greenlet_available():
        return BACKENDS
    return tuple(b for b in BACKENDS if b != "greenlet")


def set_default_backend(name: str | None) -> None:
    """Install a process-wide default backend (``None`` clears it).

    ``name`` may be ``auto`` or any concrete backend; it is validated
    (and, for ``auto``, resolved) lazily at :func:`resolve_backend`
    time so that installing a default never imports greenlet eagerly.
    """
    global _default_backend
    if name is not None:
        _check_name(name)
    _default_backend = name


def get_default_backend() -> str | None:
    """The process-wide default installed via :func:`set_default_backend`."""
    return _default_backend


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend request to a concrete, validated name.

    Args:
        name: explicit request (``auto``/``threads``/``greenlet``/
            ``inline``) or ``None`` to fall through the precedence
            chain documented in the module docstring.

    Returns:
        One of :data:`BACKENDS`.

    Raises:
        ValueError: unknown backend name.
        ImportError: ``greenlet`` requested explicitly but not
            importable.
    """
    if name is None:
        name = _default_backend
    if name is None:
        name = os.environ.get(ENV_VAR) or None
    if name is None or name == "auto":
        return "greenlet" if greenlet_available() else "threads"
    _check_name(name)
    if name == "greenlet" and not greenlet_available():
        raise ImportError(
            "execution backend 'greenlet' was requested but the greenlet "
            "package is not installed; install greenlet or select "
            "'threads'/'inline' (REPRO_SIM_BACKEND / --backend)"
        )
    return name


def _check_name(name: str) -> None:
    if name != "auto" and name not in BACKENDS:
        raise ValueError(
            f"unknown execution backend {name!r}; expected 'auto' or one of "
            + ", ".join(repr(b) for b in BACKENDS)
        )
