"""Deterministic discrete-event simulation kernel.

Public surface:

* :class:`Simulator` — the event loop / virtual clock.
* :class:`SimProcess` — a suspendable simulated process.
* :mod:`repro.des.backends` — execution-backend selection
  (``threads``/``greenlet``/``inline``; :func:`resolve_backend`,
  :func:`set_default_backend`, ``REPRO_SIM_BACKEND``).
* :mod:`repro.des.sync` — :class:`Waiter`, :class:`SimEvent`,
  :class:`Mailbox`, :class:`Gate` primitives.
* :mod:`repro.des.errors` — kernel exception types.
"""

from .backends import (
    available_backends,
    get_default_backend,
    greenlet_available,
    resolve_backend,
    set_default_backend,
)
from .errors import (
    DeadlockError,
    NotInProcessError,
    ProcessFailed,
    ProcessKilled,
    SchedulingError,
    SimClosedError,
    SimulationError,
)
from .kernel import INTERRUPTED, Interrupted, SimProcess, Simulator, Timer
from .sync import TIMEOUT, Gate, Mailbox, SimEvent, Waiter
from .trace import Tracer, TraceRecord

__all__ = [
    "Simulator",
    "SimProcess",
    "Timer",
    "INTERRUPTED",
    "Interrupted",
    "Waiter",
    "SimEvent",
    "Mailbox",
    "Gate",
    "TIMEOUT",
    "Tracer",
    "TraceRecord",
    "SimulationError",
    "DeadlockError",
    "ProcessFailed",
    "ProcessKilled",
    "SimClosedError",
    "NotInProcessError",
    "SchedulingError",
    "available_backends",
    "greenlet_available",
    "resolve_backend",
    "set_default_backend",
    "get_default_backend",
]
