"""Deterministic discrete-event simulation kernel.

Public surface:

* :class:`Simulator` — the event loop / virtual clock.
* :class:`SimProcess` — a thread-backed simulated process.
* :mod:`repro.des.sync` — :class:`Waiter`, :class:`SimEvent`,
  :class:`Mailbox`, :class:`Gate` primitives.
* :mod:`repro.des.errors` — kernel exception types.
"""

from .errors import (
    DeadlockError,
    NotInProcessError,
    ProcessFailed,
    ProcessKilled,
    SchedulingError,
    SimClosedError,
    SimulationError,
)
from .kernel import INTERRUPTED, Interrupted, SimProcess, Simulator, Timer
from .sync import TIMEOUT, Gate, Mailbox, SimEvent, Waiter
from .trace import Tracer, TraceRecord

__all__ = [
    "Simulator",
    "SimProcess",
    "Timer",
    "INTERRUPTED",
    "Interrupted",
    "Waiter",
    "SimEvent",
    "Mailbox",
    "Gate",
    "TIMEOUT",
    "Tracer",
    "TraceRecord",
    "SimulationError",
    "DeadlockError",
    "ProcessFailed",
    "ProcessKilled",
    "SimClosedError",
    "NotInProcessError",
    "SchedulingError",
]
