"""Lightweight tracing of kernel events.

A :class:`Tracer` can be attached to a :class:`~repro.des.Simulator` to
record process lifecycle and scheduling events.  Tracing is primarily a
debugging and testing aid; it is off by default and costs nothing when
disabled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One traced kernel event.

    Attributes:
        time: virtual time at which the event occurred.
        kind: event kind, one of ``spawn``, ``start``, ``sleep``, ``block``,
            ``wake``, ``interrupt``, ``exit``, ``fail``, ``kill``, ``timer``.
        process: name of the process involved (or ``"<kernel>"``).
        detail: free-form human-readable detail string.
    """

    time: float
    kind: str
    process: str
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.time:12.9f}] {self.kind:<9} {self.process} {self.detail}"


class Tracer:
    """Bounded in-memory collector of :class:`TraceRecord` entries."""

    def __init__(self, maxlen: int | None = 100_000):
        self._records: deque[TraceRecord] = deque(maxlen=maxlen)

    def emit(self, record: TraceRecord) -> None:
        self._records.append(record)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """Return all records with the given ``kind``."""
        return [r for r in self._records if r.kind == kind]

    def for_process(self, name: str) -> list[TraceRecord]:
        """Return all records for the process called ``name``."""
        return [r for r in self._records if r.process == name]

    def clear(self) -> None:
        self._records.clear()
