"""Packaging for the repro-mpi reproduction.

The environment for this reproduction has no `wheel` package and no
network access, so PEP 660 editable installs are unavailable; this
classic setup.py enables ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``pip install .`` on modern
toolchains falls back to it too).  Metadata lives here rather than in
pyproject.toml so installs never require build isolation.
"""

from setuptools import find_packages, setup

setup(
    name="repro-mpi",
    version="0.2.0",
    description=(
        "Reproduction of 'Enabling Practical Transparent Checkpointing "
        "for MPI: A Topological Sort Approach' (CLUSTER 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-mpi = repro.cli:main",
        ],
    },
)
