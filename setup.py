"""Legacy setup shim.

The environment for this reproduction has no `wheel` package and no network
access, so PEP 660 editable installs are unavailable; this shim enables
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on modern toolchains falls back to it too).
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
